//! Core précis-processing error type.

use std::fmt;

/// Errors raised while answering a précis query.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A storage-engine operation failed.
    Storage(precis_storage::StorageError),
    /// A schema-graph operation failed.
    Graph(precis_graph::GraphError),
    /// A named weight profile is not registered with the engine.
    UnknownProfile(String),
    /// The schema graph was built over a different database schema than the
    /// engine's database.
    SchemaMismatch(String),
    /// The query contained no tokens.
    EmptyQuery,
    /// Answer generation was cancelled (deadline exceeded or caller abort).
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::UnknownProfile(p) => write!(f, "unknown weight profile {p:?}"),
            CoreError::SchemaMismatch(msg) => write!(f, "graph/database schema mismatch: {msg}"),
            CoreError::EmptyQuery => f.write_str("précis query has no tokens"),
            CoreError::Cancelled => f.write_str("answer generation cancelled (deadline exceeded)"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<precis_storage::StorageError> for CoreError {
    fn from(e: precis_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<precis_graph::GraphError> for CoreError {
    fn from(e: precis_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_sources() {
        use std::error::Error;
        let e = CoreError::from(precis_storage::StorageError::UnknownRelation("R".into()));
        assert!(e.to_string().contains("storage error"));
        assert!(e.source().is_some());
        assert!(CoreError::EmptyQuery.source().is_none());
        let g = CoreError::from(precis_graph::GraphError::WeightOutOfRange(2.0));
        assert!(g.to_string().contains("graph error"));
    }
}
