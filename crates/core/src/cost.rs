//! The cost model of the Result Database Generator (paper §6).
//!
//! Formula (1): `Cost(D′) = Σᵢ card(R′ᵢ) · (IndexTime + TupleTime)` — each
//! retrieved tuple pays one index probe and one tuple read.
//!
//! Formula (2): with a per-relation cardinality cap c_R and n_R populated
//! relations, `Cost(D′) = c_R · n_R · (IndexTime + TupleTime)`.
//!
//! Formula (3): given a response-time budget cost_M,
//! `c_R = cost_M / (n_R · (IndexTime + TupleTime))` — constraints can be
//! derived from desired latency.

use precis_storage::{Database, RelationId, StatsSnapshot, Value};
use std::time::Instant;

/// Calibrated micro-costs of the two storage primitives, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds to find the tuple ids for a value in an index (`IndexTime`).
    pub index_time: f64,
    /// Seconds to read a tuple given its id (`TupleTime`).
    pub tuple_time: f64,
}

impl CostModel {
    pub fn new(index_time: f64, tuple_time: f64) -> Self {
        CostModel {
            index_time,
            tuple_time,
        }
    }

    /// Formula (2): predicted generation cost in seconds for `c_r` tuples
    /// per relation across `n_r` relations.
    pub fn predict(&self, c_r: usize, n_r: usize) -> f64 {
        (c_r * n_r) as f64 * (self.index_time + self.tuple_time)
    }

    /// Formula (1) generalized to measured event counts: probes and reads
    /// priced separately.
    pub fn predict_from_counts(&self, s: StatsSnapshot) -> f64 {
        s.index_probes as f64 * self.index_time + s.tuple_reads as f64 * self.tuple_time
    }

    /// Formula (2) applied to a precomputed tuple-volume estimate — the
    /// admission-time form, where the scheduler has already folded the
    /// cardinality constraint and the result schema into one tuple count.
    pub fn predict_volume(&self, tuples: u64) -> f64 {
        tuples as f64 * (self.index_time + self.tuple_time)
    }

    /// Formula (3): the per-relation cardinality constraint affordable
    /// within `cost_m` seconds when `n_r` relations will be populated.
    pub fn cardinality_for_budget(&self, cost_m: f64, n_r: usize) -> usize {
        if n_r == 0 || self.index_time + self.tuple_time <= 0.0 {
            return usize::MAX;
        }
        (cost_m / (n_r as f64 * (self.index_time + self.tuple_time))).floor() as usize
    }

    /// Measure `IndexTime` and `TupleTime` on a live database by timing
    /// repeated probes of `rel.attr` with the given sample values.
    ///
    /// Values absent from the index still measure probe cost; tuple reads
    /// are measured over the tuples the probes return.
    pub fn calibrate(
        db: &Database,
        rel: RelationId,
        attr: usize,
        sample_values: &[Value],
        rounds: usize,
    ) -> Option<CostModel> {
        if sample_values.is_empty() || rounds == 0 {
            return None;
        }
        let mut probes = 0u64;
        let mut reads = 0u64;
        let mut probe_secs = 0.0f64;
        let mut read_secs = 0.0f64;
        for _ in 0..rounds {
            for v in sample_values {
                let t0 = Instant::now();
                let tids = db.lookup(rel, attr, v).ok()?.to_vec();
                probe_secs += t0.elapsed().as_secs_f64();
                probes += 1;
                let t1 = Instant::now();
                for tid in tids {
                    let _ = db.fetch_from(rel, tid).ok()?;
                    reads += 1;
                }
                read_secs += t1.elapsed().as_secs_f64();
            }
        }
        if probes == 0 || reads == 0 {
            return None;
        }
        Some(CostModel {
            index_time: probe_secs / probes as f64,
            tuple_time: read_secs / reads as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::{DataType, DatabaseSchema, RelationSchema};

    #[test]
    fn formula_two_is_bilinear() {
        let m = CostModel::new(1e-6, 2e-6);
        let c1 = m.predict(10, 4);
        assert!((c1 - 10.0 * 4.0 * 3e-6).abs() < 1e-12);
        assert!((m.predict(20, 4) - 2.0 * c1).abs() < 1e-12);
        assert!((m.predict(10, 8) - 2.0 * c1).abs() < 1e-12);
        // The volume form agrees with the (c_R, n_R) form.
        assert!((m.predict_volume(40) - c1).abs() < 1e-12);
    }

    #[test]
    fn counts_prediction_prices_events_separately() {
        let m = CostModel::new(1.0, 10.0);
        let s = StatsSnapshot {
            index_probes: 3,
            tuple_reads: 2,
        };
        assert!((m.predict_from_counts(s) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn formula_three_inverts_formula_two() {
        let m = CostModel::new(1e-6, 2e-6);
        let budget = m.predict(50, 4);
        assert_eq!(m.cardinality_for_budget(budget, 4), 50);
        assert_eq!(m.cardinality_for_budget(1.0, 0), usize::MAX);
        let degenerate = CostModel::new(0.0, 0.0);
        assert_eq!(degenerate.cardinality_for_budget(1.0, 4), usize::MAX);
    }

    #[test]
    fn calibration_measures_positive_times() {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("R")
                .attr_not_null("id", DataType::Int)
                .attr("k", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        let r = db.schema().relation_id("R").unwrap();
        db.create_index(r, 1);
        for i in 0..100 {
            db.insert("R", vec![Value::from(i), Value::from(i % 10)])
                .unwrap();
        }
        let samples: Vec<Value> = (0..10).map(Value::from).collect();
        let m = CostModel::calibrate(&db, r, 1, &samples, 5).unwrap();
        assert!(m.index_time > 0.0);
        assert!(m.tuple_time > 0.0);
        // Empty input is rejected.
        assert!(CostModel::calibrate(&db, r, 1, &[], 5).is_none());
        assert!(CostModel::calibrate(&db, r, 1, &samples, 0).is_none());
    }
}
