//! The result schema D′ produced by the Result Schema Generator: a sub-graph
//! G′ of the schema graph (paper §5.1, Figure 4).

use precis_graph::{Path, SchemaGraph};
use precis_storage::RelationId;
use std::collections::{BTreeMap, BTreeSet};

/// Per-relation bookkeeping inside a [`ResultSchema`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationInfo {
    /// Attribute positions projected in the answer (from accepted projection
    /// paths) — the *visible* attributes.
    pub visible_attrs: BTreeSet<usize>,
    /// Origin relations (relations containing query tokens) whose accepted
    /// paths pass through this relation. The paper's *in-degree* of the node
    /// is the size of this set (MOVIE has in-degree 2 in Figure 4).
    pub origins: BTreeSet<RelationId>,
}

/// A join edge of the schema graph that participates in the result schema,
/// annotated with the origins whose paths use it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsedJoin {
    /// Index into the schema graph's join-edge table.
    pub edge: usize,
    /// Origins whose accepted paths traverse this edge.
    pub origins: BTreeSet<RelationId>,
}

/// The output of the Result Schema Generator: which relations appear in the
/// answer, which of their attributes are projected, which join edges connect
/// them, and the accepted projection paths `P_d`.
#[derive(Debug, Clone, Default)]
pub struct ResultSchema {
    relations: BTreeMap<RelationId, RelationInfo>,
    joins: Vec<UsedJoin>,
    origins: Vec<RelationId>,
    paths: Vec<Path>,
}

impl ResultSchema {
    pub(crate) fn new(origins: Vec<RelationId>) -> Self {
        let mut rs = ResultSchema {
            relations: BTreeMap::new(),
            joins: Vec::new(),
            origins: origins.clone(),
            paths: Vec::new(),
        };
        // Origin relations are always part of the answer: they hold the
        // matching tuples (shown "in color" in Figure 4).
        for o in origins {
            rs.relations.entry(o).or_default().origins.insert(o);
        }
        rs
    }

    /// Fold an accepted projection path into the sub-graph: insert its nodes
    /// and edges, tag them with the path's origin, and record the projected
    /// attribute.
    pub(crate) fn accept_path(&mut self, graph: &SchemaGraph, path: &Path) {
        let origin = path.origin();
        for rel in path.visited() {
            self.relations
                .entry(*rel)
                .or_default()
                .origins
                .insert(origin);
        }
        for &edge in path.join_edges() {
            match self.joins.iter_mut().find(|u| u.edge == edge) {
                Some(u) => {
                    u.origins.insert(origin);
                }
                None => {
                    let mut origins = BTreeSet::new();
                    origins.insert(origin);
                    self.joins.push(UsedJoin { edge, origins });
                }
            }
        }
        if let Some(pe) = path.projection_edge() {
            let p = graph.projection_edge(pe);
            self.relations
                .entry(p.rel)
                .or_default()
                .visible_attrs
                .insert(p.attr);
        }
        self.paths.push(path.clone());
    }

    /// Relations in the result schema, ascending by id.
    pub fn relations(&self) -> impl Iterator<Item = (RelationId, &RelationInfo)> {
        self.relations.iter().map(|(&r, i)| (r, i))
    }

    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    pub fn contains(&self, rel: RelationId) -> bool {
        self.relations.contains_key(&rel)
    }

    pub fn info(&self, rel: RelationId) -> Option<&RelationInfo> {
        self.relations.get(&rel)
    }

    /// The paper's in-degree of a relation node: how many origins reach it.
    pub fn in_degree(&self, rel: RelationId) -> usize {
        self.relations.get(&rel).map_or(0, |i| i.origins.len())
    }

    /// Join edges participating in the result schema.
    pub fn used_joins(&self) -> &[UsedJoin] {
        &self.joins
    }

    /// Relations containing the query tokens (the traversal origins).
    pub fn origins(&self) -> &[RelationId] {
        &self.origins
    }

    /// The accepted projection paths `P_d`, in acceptance (priority) order.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Visible (projected) attribute positions of `rel`, ascending.
    pub fn visible_attrs(&self, rel: RelationId) -> Vec<usize> {
        self.relations
            .get(&rel)
            .map(|i| i.visible_attrs.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Attributes that must be physically stored for `rel` in the result
    /// database: the visible attributes, plus the endpoints of used join
    /// edges ("attributes required for joins have been also projected in the
    /// result, but will not show in the final answer" — Figure 6), plus the
    /// primary key so result relations keep their key constraint.
    pub fn stored_attrs(&self, graph: &SchemaGraph, rel: RelationId) -> Vec<usize> {
        let mut set: BTreeSet<usize> = match self.relations.get(&rel) {
            Some(info) => info.visible_attrs.clone(),
            None => return Vec::new(),
        };
        for u in &self.joins {
            let e = graph.join_edge(u.edge);
            if e.from == rel {
                set.insert(e.from_attr);
            }
            if e.to == rel {
                set.insert(e.to_attr);
            }
        }
        if let Some(pk) = graph.schema().relation(rel).primary_key() {
            set.insert(pk);
        }
        set.into_iter().collect()
    }

    /// Hidden attributes of `rel`: stored but not visible (join attributes
    /// and primary keys pulled in for structural reasons).
    pub fn hidden_attrs(&self, graph: &SchemaGraph, rel: RelationId) -> Vec<usize> {
        let visible = self
            .relations
            .get(&rel)
            .map(|i| i.visible_attrs.clone())
            .unwrap_or_default();
        self.stored_attrs(graph, rel)
            .into_iter()
            .filter(|a| !visible.contains(a))
            .collect()
    }

    /// Total number of visible attributes across relations (a common
    /// "degree" measure, used as the x-axis of Figure 7).
    pub fn total_visible_attrs(&self) -> usize {
        self.relations.values().map(|i| i.visible_attrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_graph::SchemaGraph;
    use precis_storage::{DataType, DatabaseSchema, ForeignKey, RelationSchema};

    fn graph() -> SchemaGraph {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("A")
                .attr_not_null("id", DataType::Int)
                .attr("x", DataType::Text)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_relation(
            RelationSchema::builder("B")
                .attr_not_null("id", DataType::Int)
                .attr("a", DataType::Int)
                .attr("y", DataType::Text)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_foreign_key(ForeignKey::new("B", "a", "A", "id"))
            .unwrap();
        SchemaGraph::from_foreign_keys(s, 0.8, 0.5, 0.7).unwrap()
    }

    #[test]
    fn accept_path_updates_everything() {
        let g = graph();
        let a = g.schema().relation_id("A").unwrap();
        let b = g.schema().relation_id("B").unwrap();
        let mut rs = ResultSchema::new(vec![a]);
        assert!(rs.contains(a));
        assert_eq!(rs.in_degree(a), 1);
        assert!(!rs.contains(b));

        let ab = g.find_join(a, b).unwrap();
        let y = g.schema().relation(b).attr_position("y").unwrap();
        let proj_y = g.find_projection(b, y).unwrap();
        let p = Path::seed(a)
            .extend_join(&g, ab)
            .unwrap()
            .extend_projection(&g, proj_y)
            .unwrap();
        rs.accept_path(&g, &p);

        assert!(rs.contains(b));
        assert_eq!(rs.visible_attrs(b), vec![y]);
        assert_eq!(rs.used_joins().len(), 1);
        assert_eq!(rs.used_joins()[0].edge, ab);
        assert!(rs.used_joins()[0].origins.contains(&a));
        assert_eq!(rs.paths().len(), 1);
        assert_eq!(rs.total_visible_attrs(), 1);
        assert_eq!(rs.relation_count(), 2);
    }

    #[test]
    fn in_degree_counts_distinct_origins() {
        let g = graph();
        let a = g.schema().relation_id("A").unwrap();
        let b = g.schema().relation_id("B").unwrap();
        let mut rs = ResultSchema::new(vec![a, b]);
        let ab = g.find_join(a, b).unwrap();
        let p = Path::seed(a).extend_join(&g, ab).unwrap();
        let y = g.schema().relation(b).attr_position("y").unwrap();
        let p = p
            .extend_projection(&g, g.find_projection(b, y).unwrap())
            .unwrap();
        rs.accept_path(&g, &p);
        // B is an origin itself and also reached from A.
        assert_eq!(rs.in_degree(b), 2);
        assert_eq!(rs.in_degree(a), 1);
        assert_eq!(rs.origins(), &[a, b]);
    }

    #[test]
    fn stored_attrs_include_join_endpoints_and_pk() {
        let g = graph();
        let a = g.schema().relation_id("A").unwrap();
        let b = g.schema().relation_id("B").unwrap();
        let mut rs = ResultSchema::new(vec![a]);
        let ab = g.find_join(a, b).unwrap();
        let y = g.schema().relation(b).attr_position("y").unwrap();
        let p = Path::seed(a)
            .extend_join(&g, ab)
            .unwrap()
            .extend_projection(&g, g.find_projection(b, y).unwrap())
            .unwrap();
        rs.accept_path(&g, &p);
        // B stores: id (pk), a (join endpoint), y (visible).
        assert_eq!(rs.stored_attrs(&g, b), vec![0, 1, 2]);
        assert_eq!(rs.hidden_attrs(&g, b), vec![0, 1]);
        // A stores: id (pk + join endpoint) even with nothing visible.
        assert_eq!(rs.stored_attrs(&g, a), vec![0]);
        // Relations outside the result schema store nothing.
        assert!(rs
            .stored_attrs(&g, precis_storage::RelationId(99))
            .is_empty());
    }

    #[test]
    fn duplicate_edge_acceptance_merges_origins() {
        let g = graph();
        let a = g.schema().relation_id("A").unwrap();
        let b = g.schema().relation_id("B").unwrap();
        let mut rs = ResultSchema::new(vec![a]);
        let ab = g.find_join(a, b).unwrap();
        let y = g.schema().relation(b).attr_position("y").unwrap();
        let id = g.schema().relation(b).attr_position("id").unwrap();
        let base = Path::seed(a).extend_join(&g, ab).unwrap();
        let p1 = base
            .extend_projection(&g, g.find_projection(b, y).unwrap())
            .unwrap();
        let p2 = base
            .extend_projection(&g, g.find_projection(b, id).unwrap())
            .unwrap();
        rs.accept_path(&g, &p1);
        rs.accept_path(&g, &p2);
        assert_eq!(rs.used_joins().len(), 1, "same edge recorded once");
        assert_eq!(rs.visible_attrs(b), vec![id, y]);
        assert_eq!(rs.paths().len(), 2);
    }
}
