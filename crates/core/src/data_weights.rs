//! Weights on data values — the paper's §7 ongoing work: "we are
//! investigating the possibility of having weights on data values as well."
//!
//! A [`TupleWeights`] registry assigns every tuple an importance in [0, 1].
//! Combined with [`crate::RetrievalStrategy::TopWeight`], the Result
//! Database Generator retrieves the most important joining tuples first, so
//! a tight cardinality constraint keeps a movie's blockbusters rather than
//! whichever tuples the index happened to list first.

use crate::error::CoreError;
use crate::Result;
use precis_storage::{Database, RelationId, TupleId};
use std::collections::HashMap;

/// Per-tuple importance weights, defaulting to `default_weight` for tuples
/// without an explicit entry.
#[derive(Debug, Clone)]
pub struct TupleWeights {
    weights: HashMap<(RelationId, TupleId), f64>,
    default_weight: f64,
}

impl Default for TupleWeights {
    fn default() -> Self {
        TupleWeights {
            weights: HashMap::new(),
            default_weight: 0.5,
        }
    }
}

impl TupleWeights {
    pub fn new(default_weight: f64) -> Result<Self> {
        check(default_weight)?;
        Ok(TupleWeights {
            weights: HashMap::new(),
            default_weight,
        })
    }

    /// Set one tuple's weight (must be within [0, 1]).
    pub fn set(&mut self, rel: RelationId, tid: TupleId, weight: f64) -> Result<()> {
        check(weight)?;
        self.weights.insert((rel, tid), weight);
        Ok(())
    }

    /// The weight of a tuple.
    pub fn get(&self, rel: RelationId, tid: TupleId) -> f64 {
        self.weights
            .get(&(rel, tid))
            .copied()
            .unwrap_or(self.default_weight)
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Derive weights for one relation from a numeric attribute (a rating,
    /// a popularity count, a recency year …), min-max normalized into
    /// [0, 1]. Tuples with NULL or non-numeric values keep the default.
    pub fn load_from_attribute(
        &mut self,
        db: &Database,
        rel: RelationId,
        attr: usize,
    ) -> Result<usize> {
        let numeric = |v: precis_storage::ValueRef<'_>| -> Option<f64> {
            match v {
                precis_storage::ValueRef::Int(i) => Some(i as f64),
                precis_storage::ValueRef::Float(f) => Some(f),
                _ => None,
            }
        };
        let values: Vec<(TupleId, f64)> = db
            .table(rel)
            .iter()
            .filter_map(|(tid, t)| numeric(t.get(attr)).map(|x| (tid, x)))
            .collect();
        let (min, max) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, x)| {
                (lo.min(x), hi.max(x))
            });
        if values.is_empty() {
            return Ok(0);
        }
        let span = max - min;
        for (tid, x) in &values {
            let w = if span > 0.0 { (x - min) / span } else { 1.0 };
            self.set(rel, *tid, w)?;
        }
        Ok(values.len())
    }

    /// Sort tids by descending weight (stable on ties, so index order is the
    /// tiebreak).
    pub(crate) fn order_desc(&self, rel: RelationId, tids: &mut [TupleId]) {
        tids.sort_by(|a, b| self.get(rel, *b).total_cmp(&self.get(rel, *a)));
    }
}

fn check(w: f64) -> Result<()> {
    if (0.0..=1.0).contains(&w) {
        Ok(())
    } else {
        Err(CoreError::Graph(
            precis_graph::GraphError::WeightOutOfRange(w),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::Value;
    use precis_storage::{DataType, DatabaseSchema, RelationSchema};

    fn db_with_ratings() -> Database {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("M")
                .attr_not_null("id", DataType::Int)
                .attr("rating", DataType::Float)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        for (id, r) in [(1, 2.0), (2, 8.0), (3, 5.0)] {
            db.insert("M", vec![Value::from(id), Value::from(r)])
                .unwrap();
        }
        db.insert("M", vec![Value::from(4), Value::Null]).unwrap();
        db
    }

    #[test]
    fn defaults_and_explicit_weights() {
        let mut w = TupleWeights::new(0.3).unwrap();
        let rel = RelationId(0);
        assert_eq!(w.get(rel, TupleId(7)), 0.3);
        w.set(rel, TupleId(7), 0.9).unwrap();
        assert_eq!(w.get(rel, TupleId(7)), 0.9);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert!(w.set(rel, TupleId(1), 1.5).is_err());
        assert!(TupleWeights::new(-0.1).is_err());
    }

    #[test]
    fn attribute_loading_normalizes_min_max() {
        let db = db_with_ratings();
        let rel = db.schema().relation_id("M").unwrap();
        let mut w = TupleWeights::default();
        let loaded = w.load_from_attribute(&db, rel, 1).unwrap();
        assert_eq!(loaded, 3, "NULL row skipped");
        assert_eq!(w.get(rel, TupleId(0)), 0.0); // rating 2.0 = min
        assert_eq!(w.get(rel, TupleId(1)), 1.0); // rating 8.0 = max
        assert_eq!(w.get(rel, TupleId(2)), 0.5); // rating 5.0
        assert_eq!(w.get(rel, TupleId(3)), 0.5, "NULL keeps default");
    }

    #[test]
    fn constant_attribute_maps_to_full_weight() {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("M")
                .attr_not_null("id", DataType::Int)
                .attr("year", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        for id in 0..3 {
            db.insert("M", vec![Value::from(id), Value::from(1999)])
                .unwrap();
        }
        let rel = db.schema().relation_id("M").unwrap();
        let mut w = TupleWeights::default();
        w.load_from_attribute(&db, rel, 1).unwrap();
        for id in 0..3 {
            assert_eq!(w.get(rel, TupleId(id)), 1.0);
        }
    }

    #[test]
    fn ordering_is_descending_with_stable_ties() {
        let mut w = TupleWeights::new(0.5).unwrap();
        let rel = RelationId(0);
        w.set(rel, TupleId(0), 0.1).unwrap();
        w.set(rel, TupleId(1), 0.9).unwrap();
        // TupleId(2) and TupleId(3) share the default 0.5.
        let mut tids = vec![TupleId(0), TupleId(2), TupleId(1), TupleId(3)];
        w.order_desc(rel, &mut tids);
        assert_eq!(tids, vec![TupleId(1), TupleId(2), TupleId(3), TupleId(0)]);
    }
}
