//! An optimized Result Schema Generator — the paper's §7 closes with "an
//! interesting continuation will be the further optimization of the whole
//! process"; this is that continuation for the schema-generation stage.
//!
//! The Figure 3 algorithm enumerates *paths* best-first; the number of
//! acyclic paths can grow exponentially with the schema size even when the
//! answer only needs each attribute once. This variant runs one
//! max-product Dijkstra pass per origin over *relations* (weights ≤ 1 make
//! the product monotone non-increasing, so the greedy invariant holds and
//! cycles can never improve a path), then scores every projection edge by
//! `best_path(relation) × projection_weight`.
//!
//! Semantics: **distinct-projection** — at most one (the best) path per
//! (origin, attribute) is accepted, whereas Figure 3's `P_d` keeps every
//! qualifying path. Consequences, verified by tests:
//!
//! * under a min-weight constraint the *visible attributes* are identical
//!   to Figure 3's (an attribute qualifies iff its best path qualifies);
//!   used joins/relations may be a subset (only best-path evidence);
//! * under top-r the budget counts distinct attributes, not paths;
//! * under max-path-length the constraint applies to the best-weight path
//!   (ties broken shorter-first).

use crate::constraints::DegreeConstraint;
use crate::constraints::Verdict;
use crate::result_schema::ResultSchema;
use precis_graph::{Path, SchemaGraph};
use precis_storage::RelationId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-product Dijkstra state.
#[derive(Debug)]
struct Frontier {
    weight: f64,
    length: usize,
    rel: RelationId,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.weight
            .total_cmp(&other.weight)
            .then_with(|| other.length.cmp(&self.length))
            .then_with(|| other.rel.cmp(&self.rel))
    }
}

/// Per-relation best-path bookkeeping for one origin.
#[derive(Debug, Clone, Copy)]
struct Best {
    weight: f64,
    length: usize,
    /// Join edge used to arrive here (`None` at the origin).
    via: Option<usize>,
}

/// Compute the result schema using one Dijkstra pass per origin. See the
/// module docs for the (documented) semantic differences from
/// [`crate::generate_result_schema`].
pub fn generate_result_schema_fast(
    graph: &SchemaGraph,
    origins: &[RelationId],
    degree: &DegreeConstraint,
) -> ResultSchema {
    let mut unique_origins: Vec<RelationId> = Vec::new();
    for &o in origins {
        if !unique_origins.contains(&o) {
            unique_origins.push(o);
        }
    }
    let mut result = ResultSchema::new(unique_origins.clone());

    // Candidates across all origins: (weight, length, origin, projection).
    let mut candidates: Vec<(f64, usize, RelationId, usize)> = Vec::new();
    let mut best_tables: Vec<(RelationId, Vec<Option<Best>>)> = Vec::new();

    for &origin in &unique_origins {
        let best = dijkstra(graph, origin);
        for (pe_idx, pe) in graph.projection_edges().iter().enumerate() {
            if let Some(b) = best[pe.rel.0] {
                candidates.push((b.weight * pe.weight, b.length + 1, origin, pe_idx));
            }
        }
        best_tables.push((origin, best));
    }

    // Best-first over candidates, mirroring the queue order of Figure 3:
    // weight desc, length asc, deterministic tiebreak.
    candidates.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
            .then_with(|| a.3.cmp(&b.3))
    });

    let mut accepted = 0usize;
    for (_, _, origin, pe_idx) in candidates {
        let best = &best_tables
            .iter()
            .find(|(o, _)| *o == origin)
            .expect("origin table exists")
            .1;
        let Some(path) = reconstruct_path(graph, best, origin, pe_idx) else {
            continue;
        };
        match degree.check(accepted, &path) {
            Verdict::RejectTerminal => break,
            Verdict::Reject => continue,
            Verdict::Admit => {
                result.accept_path(graph, &path);
                accepted += 1;
            }
        }
    }
    result
}

/// Max-product shortest paths from `origin` over the join edges.
fn dijkstra(graph: &SchemaGraph, origin: RelationId) -> Vec<Option<Best>> {
    let n = graph.schema().relation_count();
    let mut best: Vec<Option<Best>> = vec![None; n];
    let mut heap: BinaryHeap<Frontier> = BinaryHeap::new();
    best[origin.0] = Some(Best {
        weight: 1.0,
        length: 0,
        via: None,
    });
    heap.push(Frontier {
        weight: 1.0,
        length: 0,
        rel: origin,
    });
    while let Some(f) = heap.pop() {
        let settled = best[f.rel.0].expect("pushed implies recorded");
        if f.weight < settled.weight || (f.weight == settled.weight && f.length > settled.length) {
            continue; // stale entry
        }
        for &je in graph.joins_from(f.rel) {
            let e = graph.join_edge(je);
            let w = f.weight * e.weight;
            let l = f.length + 1;
            let better = match best[e.to.0] {
                None => true,
                Some(b) => w > b.weight || (w == b.weight && l < b.length),
            };
            if better && w > 0.0 {
                best[e.to.0] = Some(Best {
                    weight: w,
                    length: l,
                    via: Some(je),
                });
                heap.push(Frontier {
                    weight: w,
                    length: l,
                    rel: e.to,
                });
            }
        }
    }
    best
}

/// Rebuild a [`Path`] from the parent pointers and terminate it with the
/// projection edge. Returns `None` if the reconstructed walk is cyclic
/// (cannot happen with weights in (0, 1], but guards weight-0 corner cases).
fn reconstruct_path(
    graph: &SchemaGraph,
    best: &[Option<Best>],
    origin: RelationId,
    projection_edge: usize,
) -> Option<Path> {
    let target = graph.projection_edge(projection_edge).rel;
    let mut edges: Vec<usize> = Vec::new();
    let mut cur = target;
    while cur != origin {
        let b = best[cur.0]?;
        let via = b.via?;
        edges.push(via);
        cur = graph.join_edge(via).from;
        if edges.len() > best.len() {
            return None; // cycle guard
        }
    }
    edges.reverse();
    let mut path = Path::seed(origin);
    for e in edges {
        path = path.extend_join(graph, e)?;
    }
    path.extend_projection(graph, projection_edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::generate_result_schema;
    use precis_datagen_free::movies_like_graph;

    /// A local stand-in for the datagen movies graph (core cannot depend on
    /// datagen without a cycle).
    mod precis_datagen_free {
        use precis_graph::SchemaGraph;
        use precis_storage::{DataType, DatabaseSchema, ForeignKey, RelationSchema};

        pub fn movies_like_graph() -> SchemaGraph {
            let mut s = DatabaseSchema::new("m");
            for (name, extra) in [
                ("A", None),
                ("B", Some("a_id")),
                ("C", Some("b_id")),
                ("D", Some("b_id")),
            ] {
                let mut b = RelationSchema::builder(name)
                    .attr_not_null("id", DataType::Int)
                    .attr("x", DataType::Text)
                    .attr("y", DataType::Text)
                    .primary_key("id");
                if let Some(e) = extra {
                    b = b.attr(e, DataType::Int);
                }
                s.add_relation(b.build().unwrap()).unwrap();
            }
            s.add_foreign_key(ForeignKey::new("B", "a_id", "A", "id"))
                .unwrap();
            s.add_foreign_key(ForeignKey::new("C", "b_id", "B", "id"))
                .unwrap();
            s.add_foreign_key(ForeignKey::new("D", "b_id", "B", "id"))
                .unwrap();
            SchemaGraph::from_foreign_keys(s, 0.9, 0.8, 0.85).unwrap()
        }
    }

    #[test]
    fn min_weight_visible_attrs_match_figure_3() {
        let g = movies_like_graph();
        for w0 in [0.0, 0.3, 0.5, 0.7, 0.9, 1.0] {
            for origin in 0..4 {
                let origin = RelationId(origin);
                let slow = generate_result_schema(&g, &[origin], &DegreeConstraint::MinWeight(w0));
                let fast =
                    generate_result_schema_fast(&g, &[origin], &DegreeConstraint::MinWeight(w0));
                for rel in 0..4 {
                    let rel = RelationId(rel);
                    assert_eq!(
                        slow.visible_attrs(rel),
                        fast.visible_attrs(rel),
                        "w0={w0} origin={origin:?} rel={rel:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn top_r_counts_distinct_attributes() {
        let g = movies_like_graph();
        let a = RelationId(0);
        let fast = generate_result_schema_fast(&g, &[a], &DegreeConstraint::TopProjections(3));
        assert_eq!(fast.total_visible_attrs(), 3);
        assert_eq!(fast.paths().len(), 3, "one path per attribute");
    }

    #[test]
    fn accepted_paths_are_weight_sorted() {
        let g = movies_like_graph();
        let a = RelationId(0);
        let fast = generate_result_schema_fast(&g, &[a], &DegreeConstraint::MinWeight(0.0));
        let ws: Vec<f64> = fast.paths().iter().map(|p| p.weight()).collect();
        assert!(ws.windows(2).all(|w| w[0] >= w[1] - 1e-12), "{ws:?}");
        // Every attribute appears exactly once.
        let mut keys: Vec<_> = fast
            .paths()
            .iter()
            .map(|p| p.projection_edge().unwrap())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), fast.paths().len());
    }

    #[test]
    fn multiple_origins_tag_in_degrees() {
        let g = movies_like_graph();
        let c = RelationId(2);
        let d = RelationId(3);
        let fast = generate_result_schema_fast(&g, &[c, d], &DegreeConstraint::MinWeight(0.0));
        // B is reached from both C and D.
        assert_eq!(fast.in_degree(RelationId(1)), 2);
        assert!(fast.contains(RelationId(0)));
    }

    #[test]
    fn empty_origins_empty_schema() {
        let g = movies_like_graph();
        let fast = generate_result_schema_fast(&g, &[], &DegreeConstraint::MinWeight(0.0));
        assert_eq!(fast.relation_count(), 0);
    }
}
