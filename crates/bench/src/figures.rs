//! The figure sweeps of the paper's evaluation (§6), as reusable functions
//! returning structured series.

use crate::workloads::{
    bench_movies_graph, connected_relation_sets, full_result_schema, random_seed_tids,
    random_seed_tids_in_range, restrict_graph, run_db_generation,
};
use precis_core::{
    generate_result_schema, generate_result_schema_instrumented, CostModel, DegreeConstraint,
    RetrievalStrategy, TraversalStats,
};
use precis_datagen::{chain_db_fanout, layered_schema, random_weight_graph, tree_schema};
use precis_graph::SchemaGraph;
use precis_storage::{Database, RelationId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One point of the Figure 7 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Degree constraint: maximum number of projections in the answer.
    pub d: usize,
    /// Mean Result Schema Generator wall time, seconds.
    pub mean_secs: f64,
    /// Mean projections actually accepted (saturates at the graph size).
    pub mean_accepted: f64,
    /// Runs averaged.
    pub runs: usize,
}

/// Figure 7: Result Schema Generator execution time as a function of the
/// degree `d` (max number of projected attributes), averaged over
/// `weight_sets` random weight assignments × every relation as the single
/// token relation R₀ (the paper averaged 200 runs per point).
pub fn fig7(
    base: &SchemaGraph,
    d_values: &[usize],
    weight_sets: usize,
    seed: u64,
) -> Vec<Fig7Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let graphs: Vec<SchemaGraph> = (0..weight_sets)
        .map(|_| random_weight_graph(base, &mut rng))
        .collect();
    let origins: Vec<RelationId> = base.schema().relations().map(|(id, _)| id).collect();
    d_values
        .iter()
        .map(|&d| {
            let constraint = DegreeConstraint::TopProjections(d);
            let mut total = 0.0;
            let mut accepted = 0usize;
            let mut runs = 0usize;
            for g in &graphs {
                for &r0 in &origins {
                    let t0 = Instant::now();
                    let rs = generate_result_schema(g, &[r0], &constraint);
                    total += t0.elapsed().as_secs_f64();
                    accepted += rs.paths().len();
                    runs += 1;
                }
            }
            Fig7Point {
                d,
                mean_secs: total / runs as f64,
                mean_accepted: accepted as f64 / runs as f64,
                runs,
            }
        })
        .collect()
}

/// The default graph for Figure 7: the paper's movies schema.
pub fn fig7_movies_graph() -> SchemaGraph {
    bench_movies_graph()
}

/// A larger synthetic graph (15-relation binary tree, 4 payload attributes
/// each; with key/fk attributes, 89 projection edges) for sweeping `d`
/// beyond the movies schema.
pub fn fig7_large_graph() -> SchemaGraph {
    SchemaGraph::from_foreign_keys(tree_schema(15, 2, 4), 0.9, 0.8, 0.9).expect("valid tree graph")
}

/// One point of the Figure 8/9 series.
#[derive(Debug, Clone, Copy)]
pub struct DbGenPoint {
    /// Cardinality constraint: max tuples per relation.
    pub c_r: usize,
    /// Relations populated.
    pub n_r: usize,
    pub strategy: RetrievalStrategy,
    /// Mean Result Database Generator wall time, seconds.
    pub mean_secs: f64,
    /// Mean tuples actually retrieved.
    pub mean_tuples: f64,
    pub runs: usize,
}

/// Figure 8: Result Database Generator time as `c_R` grows, with `n_R = 4`
/// and NaïveQ, averaged over connected 4-relation sets × every relation of
/// each set as R₀ × `seed_sets` random seed-tuple sets (the paper's
/// 10 × 4 × 5 = 200 runs per point).
pub fn fig8(
    db: &Database,
    c_values: &[usize],
    max_sets: usize,
    seed_sets: usize,
    seed: u64,
) -> Vec<DbGenPoint> {
    let graph = bench_movies_graph();
    let sets: Vec<Vec<RelationId>> = connected_relation_sets(&graph, 4)
        .into_iter()
        .take(max_sets)
        .collect();
    let restricted: Vec<SchemaGraph> = sets.iter().map(|s| restrict_graph(&graph, s)).collect();
    // Result schemas are prepared outside the timed region: the paper's
    // Figures 8-9 time the Result Database Generator alone.
    type Prepared = (usize, RelationId, precis_core::ResultSchema);
    let prepared: Vec<Prepared> = sets
        .iter()
        .enumerate()
        .flat_map(|(i, set)| {
            let g = &restricted[i];
            set.iter()
                .map(move |&origin| (i, origin, full_result_schema(g, origin)))
                .collect::<Vec<_>>()
        })
        .collect();
    c_values
        .iter()
        .map(|&c_r| {
            let mut total = 0.0;
            let mut tuples = 0usize;
            let mut runs = 0usize;
            for (i, origin, schema) in &prepared {
                let g = &restricted[*i];
                for s in 0..seed_sets {
                    let seeds =
                        random_seed_tids(db, *origin, c_r, seed ^ ((s as u64) << 8) | runs as u64);
                    let t0 = Instant::now();
                    let p = run_db_generation(
                        db,
                        g,
                        schema,
                        *origin,
                        &seeds,
                        c_r,
                        RetrievalStrategy::NaiveQ,
                        true,
                    );
                    total += t0.elapsed().as_secs_f64();
                    tuples += p.total_tuples();
                    runs += 1;
                }
            }
            DbGenPoint {
                c_r,
                n_r: 4,
                strategy: RetrievalStrategy::NaiveQ,
                mean_secs: total / runs as f64,
                mean_tuples: tuples as f64 / runs as f64,
                runs,
            }
        })
        .collect()
}

/// Figure 9: NaïveQ vs. Round-Robin as `n_R` grows, at fixed `c_R`, on
/// chain databases (one relation per chain link gives exact control of
/// `n_R`, which the 7-relation movies schema cannot for n_R = 8).
pub fn fig9(
    n_values: &[usize],
    c_r: usize,
    rows_per_relation: usize,
    fanout: usize,
    repeats: usize,
    seed: u64,
) -> Vec<DbGenPoint> {
    let mut out = Vec::new();
    for &n in n_values {
        let (db, graph) = chain_db_fanout(n, rows_per_relation, fanout, seed ^ n as u64);
        let r0 = graph.schema().relation_id("R0").expect("chain root");
        let schema = full_result_schema(&graph, r0);
        let seed_range = (rows_per_relation / fanout).max(1);
        for strategy in [RetrievalStrategy::NaiveQ, RetrievalStrategy::RoundRobin] {
            let mut total = 0.0;
            let mut tuples = 0usize;
            let mut runs = 0usize;
            // One untimed warmup to fault in caches and allocator arenas.
            let warmup = random_seed_tids_in_range(&db, r0, seed_range, c_r, seed);
            let _ = run_db_generation(&db, &graph, &schema, r0, &warmup, c_r, strategy, true);
            for rep in 0..repeats {
                let seeds = random_seed_tids_in_range(&db, r0, seed_range, c_r, seed + rep as u64);
                let t0 = Instant::now();
                let p = run_db_generation(&db, &graph, &schema, r0, &seeds, c_r, strategy, true);
                total += t0.elapsed().as_secs_f64();
                tuples += p.total_tuples();
                runs += 1;
            }
            out.push(DbGenPoint {
                c_r,
                n_r: n,
                strategy,
                mean_secs: total / runs as f64,
                mean_tuples: tuples as f64 / runs as f64,
                runs,
            });
        }
    }
    out
}

/// One row of the cost-model validation table.
#[derive(Debug, Clone, Copy)]
pub struct CostPoint {
    pub c_r: usize,
    pub n_r: usize,
    pub measured_secs: f64,
    /// Formula (2): c_R · n_R · (IndexTime + TupleTime).
    pub predicted_secs: f64,
}

impl CostPoint {
    pub fn ratio(&self) -> f64 {
        self.measured_secs / self.predicted_secs
    }
}

/// Calibrate the cost model on a chain database and validate Formula (2)
/// across a (c_R, n_R) grid.
pub fn cost_model_validation(
    c_values: &[usize],
    n_values: &[usize],
    rows_per_relation: usize,
    repeats: usize,
    seed: u64,
) -> (CostModel, Vec<CostPoint>) {
    // Calibrate on the largest chain so the micro-costs match the runs.
    let n_max = n_values.iter().copied().max().unwrap_or(2);
    let (db, graph) = chain_db_fanout(n_max, rows_per_relation, 1, seed);
    let r1 = graph.schema().relation_id("R1").expect("chain link");
    let fk_attr = graph
        .schema()
        .relation(r1)
        .attr_position("r0_id")
        .expect("chain fk");
    let samples: Vec<Value> = (0..64)
        .map(|i| Value::from(i % rows_per_relation))
        .collect();
    let model = CostModel::calibrate(&db, r1, fk_attr, &samples, 16).expect("calibration");

    let mut points = Vec::new();
    for &n in n_values {
        let (db, graph) = chain_db_fanout(n, rows_per_relation, 1, seed ^ n as u64);
        let r0 = graph.schema().relation_id("R0").expect("chain root");
        let schema = full_result_schema(&graph, r0);
        for &c_r in c_values {
            let mut total = 0.0;
            for rep in 0..repeats {
                let seeds = random_seed_tids(&db, r0, c_r, seed + rep as u64);
                let t0 = Instant::now();
                let _ = run_db_generation(
                    &db,
                    &graph,
                    &schema,
                    r0,
                    &seeds,
                    c_r,
                    RetrievalStrategy::NaiveQ,
                    true,
                );
                total += t0.elapsed().as_secs_f64();
            }
            points.push(CostPoint {
                c_r,
                n_r: n,
                measured_secs: total / repeats as f64,
                predicted_secs: model.predict(c_r, n),
            });
        }
    }
    (model, points)
}

/// One row of the pruning-ablation table.
#[derive(Debug, Clone, Copy)]
pub struct PruningPoint {
    /// Min-weight threshold w₀ of the degree constraint.
    pub w0: f64,
    pub with_pruning: TraversalStats,
    pub without_pruning: TraversalStats,
    pub speedup_pushed: f64,
}

/// Ablation: how much queue work does Figure 3's prune-on-first-violation
/// save, at identical results? Swept over min-weight thresholds (where
/// pruning bites hardest: every extension below w₀ is cut, with all its
/// lighter siblings).
pub fn ablation_pruning(
    base: &SchemaGraph,
    w0_values: &[f64],
    weight_sets: usize,
    seed: u64,
) -> Vec<PruningPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let graphs: Vec<SchemaGraph> = (0..weight_sets)
        .map(|_| random_weight_graph(base, &mut rng))
        .collect();
    let origins: Vec<RelationId> = base.schema().relations().map(|(id, _)| id).collect();
    w0_values
        .iter()
        .map(|&w0| {
            let constraint = DegreeConstraint::MinWeight(w0);
            let mut with = TraversalStats::default();
            let mut without = TraversalStats::default();
            for g in &graphs {
                for &r0 in &origins {
                    let (_, s1) = generate_result_schema_instrumented(g, &[r0], &constraint, true);
                    let (_, s2) = generate_result_schema_instrumented(g, &[r0], &constraint, false);
                    with.pushed += s1.pushed;
                    with.popped += s1.popped;
                    with.accepted += s1.accepted;
                    with.pruned_siblings += s1.pruned_siblings;
                    without.pushed += s2.pushed;
                    without.popped += s2.popped;
                    without.accepted += s2.accepted;
                }
            }
            PruningPoint {
                w0,
                with_pruning: with,
                without_pruning: without,
                speedup_pushed: without.pushed as f64 / with.pushed.max(1) as f64,
            }
        })
        .collect()
}

/// One row of the in-degree postponement ablation.
#[derive(Debug, Clone, Copy)]
pub struct InDegreePoint {
    /// Seed tuples per origin relation.
    pub seeds: usize,
    /// Tuples retrieved with postponement on / off.
    pub tuples_with: f64,
    pub tuples_without: f64,
}

/// Ablation: disabling the in-degree postponement can make a departing join
/// run before all arrivals finished, missing tuples downstream. Uses two
/// origins on the movies schema so MOVIE has in-degree 2 (Figure 4), with
/// MOVIE→GENRE boosted above the actor-side path weights so that, without
/// postponement, the genre join fires before the actor-reached movies
/// arrive — losing their genres.
pub fn ablation_in_degree(db: &Database, seed_counts: &[usize], seed: u64) -> Vec<InDegreePoint> {
    use precis_core::{generate_result_database, CardinalityConstraint, DbGenOptions};
    use precis_graph::WeightProfile;
    use std::collections::HashMap;
    let graph = bench_movies_graph()
        .with_profile(&WeightProfile::new("eager-genres").set("MOVIE->GENRE", 0.97))
        .expect("valid profile");
    let s = graph.schema();
    let director = s.relation_id("DIRECTOR").expect("movies schema");
    let actor = s.relation_id("ACTOR").expect("movies schema");
    let schema = generate_result_schema(
        &graph,
        &[director, actor],
        &DegreeConstraint::MinWeight(0.9),
    );
    seed_counts
        .iter()
        .map(|&n_seeds| {
            let seeds: HashMap<RelationId, Vec<precis_storage::TupleId>> = HashMap::from([
                (director, random_seed_tids(db, director, n_seeds, seed)),
                (actor, random_seed_tids(db, actor, n_seeds, seed + 1)),
            ]);
            let run = |postpone: bool| {
                generate_result_database(
                    db,
                    &graph,
                    &schema,
                    &seeds,
                    &CardinalityConstraint::Unbounded,
                    RetrievalStrategy::NaiveQ,
                    &DbGenOptions {
                        repair_foreign_keys: false,
                        postpone_by_in_degree: postpone,
                        ..DbGenOptions::default()
                    },
                )
                .expect("generation succeeds")
            };
            InDegreePoint {
                seeds: n_seeds,
                tuples_with: run(true).total_tuples() as f64,
                tuples_without: run(false).total_tuples() as f64,
            }
        })
        .collect()
}

/// One row of the schema-generator optimization comparison (§7's "further
/// optimization" realized).
#[derive(Debug, Clone, Copy)]
pub struct FastGenPoint {
    /// Min-weight threshold of the degree constraint.
    pub w0: f64,
    /// Mean Figure-3 (path-enumeration) time, seconds.
    pub fig3_secs: f64,
    /// Mean Dijkstra-variant time, seconds.
    pub fast_secs: f64,
    /// Visible attributes produced (identical for both, asserted).
    pub visible_attrs: usize,
}

/// Compare the paper's Figure 3 generator with the optimized
/// distinct-projection variant on a layered all-to-all graph (5 layers x 3
/// relations), where the number of distinct acyclic paths — and hence
/// Figure 3's work — grows exponentially while the Dijkstra variant stays
/// linear in the edge count.
pub fn ablation_fast_schema_gen(
    w0_values: &[f64],
    weight_sets: usize,
    repeats: usize,
    seed: u64,
) -> Vec<FastGenPoint> {
    use precis_core::generate_result_schema_fast;
    let base = SchemaGraph::from_foreign_keys(layered_schema(5, 3, 2), 0.95, 0.9, 0.9)
        .expect("valid layered graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let graphs: Vec<SchemaGraph> = (0..weight_sets)
        .map(|_| random_weight_graph(&base, &mut rng))
        .collect();
    let origin = base
        .schema()
        .relation_id("L0_0")
        .expect("layered schema root");
    w0_values
        .iter()
        .map(|&w0| {
            let constraint = DegreeConstraint::MinWeight(w0);
            let mut fig3 = 0.0;
            let mut fast = 0.0;
            let mut visible = 0usize;
            let mut runs = 0usize;
            for g in &graphs {
                for _ in 0..repeats {
                    let t0 = Instant::now();
                    let slow_rs = generate_result_schema(g, &[origin], &constraint);
                    fig3 += t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    let fast_rs = generate_result_schema_fast(g, &[origin], &constraint);
                    fast += t1.elapsed().as_secs_f64();
                    assert_eq!(
                        slow_rs.total_visible_attrs(),
                        fast_rs.total_visible_attrs(),
                        "variants must agree on visible attributes"
                    );
                    visible += fast_rs.total_visible_attrs();
                    runs += 1;
                }
            }
            FastGenPoint {
                w0,
                fig3_secs: fig3 / runs as f64,
                fast_secs: fast / runs as f64,
                visible_attrs: visible / runs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::bench_movies_db;

    #[test]
    fn fig7_series_has_sane_shape() {
        let g = fig7_movies_graph();
        let pts = fig7(&g, &[2, 6, 14], 3, 42);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.mean_secs > 0.0);
            assert!(p.mean_accepted <= p.d as f64 + 1e-9);
            assert_eq!(p.runs, 3 * 7);
        }
        // Accepted projections grow with d until saturation.
        assert!(pts[0].mean_accepted < pts[2].mean_accepted);
    }

    #[test]
    fn fig9_round_robin_is_not_cheaper() {
        let pts = fig9(&[2, 4], 20, 200, 4, 2, 7);
        assert_eq!(pts.len(), 4);
        for pair in pts.chunks(2) {
            let naive = &pair[0];
            let rr = &pair[1];
            assert_eq!(naive.n_r, rr.n_r);
            assert!(naive.mean_tuples > 0.0);
            assert!(rr.mean_tuples > 0.0);
        }
    }

    #[test]
    fn cost_model_validation_produces_finite_ratios() {
        let (model, pts) = cost_model_validation(&[10, 30], &[2, 3], 300, 2, 5);
        assert!(model.index_time > 0.0 && model.tuple_time > 0.0);
        for p in pts {
            assert!(p.predicted_secs > 0.0);
            assert!(p.ratio().is_finite() && p.ratio() > 0.0);
        }
    }

    #[test]
    fn pruning_ablation_never_loses_results() {
        let g = fig7_movies_graph();
        let pts = ablation_pruning(&g, &[0.7, 0.4], 2, 9);
        for p in pts {
            assert_eq!(p.with_pruning.accepted, p.without_pruning.accepted);
            assert!(p.with_pruning.pushed <= p.without_pruning.pushed);
            assert!(p.speedup_pushed >= 1.0);
        }
    }

    #[test]
    fn in_degree_ablation_runs() {
        let db = bench_movies_db(77);
        let pts = ablation_in_degree(&db, &[5, 10], 3);
        for p in pts {
            assert!(p.tuples_with > 0.0);
            assert!(p.tuples_without > 0.0);
        }
    }
}
