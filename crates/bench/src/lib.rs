//! # precis-bench
//!
//! The benchmark harness reproducing the paper's evaluation (§6):
//!
//! * **Figure 7** — Result Schema Generator time vs. degree `d`;
//! * **Figure 8** — Result Database Generator time vs. tuples/relation
//!   `c_R` at `n_R = 4`, NaïveQ;
//! * **Figure 9** — NaïveQ vs. Round-Robin time vs. `n_R` at `c_R = 50`;
//! * **Formula 2** — cost-model validation (predicted vs. measured);
//! * ablations: best-first pruning, in-degree postponement, and the
//!   keyword-search baseline.
//!
//! The [`figures`] module computes each series; the `experiments` binary
//! prints them as paper-style tables, and the Criterion benches in
//! `benches/` wrap the same single-run operations.

pub mod bench_report;
pub mod figures;
pub mod load_report;
pub mod workloads;
