//! Shared workload builders for the benches and the experiments binary.

use precis_core::{
    generate_result_database, generate_result_schema, CardinalityConstraint, DbGenOptions,
    DegreeConstraint, PrecisDatabase, RetrievalStrategy,
};
use precis_datagen::{movies_graph, MoviesConfig, MoviesGenerator};
use precis_graph::SchemaGraph;
use precis_storage::{Database, RelationId, TupleId};
use rand::prelude::SliceRandom;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The synthetic movies database used by the Figure 8 sweeps. Sized so that
/// `c_R` up to 90 tuples per relation is always satisfiable.
pub fn bench_movies_db(seed: u64) -> Database {
    MoviesGenerator::new(MoviesConfig {
        movies: 5_000,
        directors: 400,
        actors: 2_500,
        theatres: 80,
        plays: 8_000,
        seed,
        ..MoviesConfig::default()
    })
    .generate()
}

/// The paper's movies schema graph.
pub fn bench_movies_graph() -> SchemaGraph {
    movies_graph()
}

/// All connected relation subsets of size `k` of the (undirected) join
/// graph — the paper's "sets of `k` relations, making sure that there is no
/// relation in any set that does not join with another relation of this
/// set".
pub fn connected_relation_sets(graph: &SchemaGraph, k: usize) -> Vec<Vec<RelationId>> {
    let n = graph.schema().relation_count();
    let adjacent = |a: RelationId, b: RelationId| {
        graph.find_join(a, b).is_some() || graph.find_join(b, a).is_some()
    };
    let mut out = Vec::new();
    let mut subset: Vec<RelationId> = Vec::new();
    fn grow(
        n: usize,
        k: usize,
        start: usize,
        subset: &mut Vec<RelationId>,
        adjacent: &dyn Fn(RelationId, RelationId) -> bool,
        out: &mut Vec<Vec<RelationId>>,
    ) {
        if subset.len() == k {
            if is_connected(subset, adjacent) {
                out.push(subset.clone());
            }
            return;
        }
        for i in start..n {
            subset.push(RelationId(i));
            grow(n, k, i + 1, subset, adjacent, out);
            subset.pop();
        }
    }
    fn is_connected(
        rels: &[RelationId],
        adjacent: &dyn Fn(RelationId, RelationId) -> bool,
    ) -> bool {
        let mut reached = vec![false; rels.len()];
        reached[0] = true;
        let mut frontier = vec![rels[0]];
        while let Some(cur) = frontier.pop() {
            for (i, &r) in rels.iter().enumerate() {
                if !reached[i] && adjacent(cur, r) {
                    reached[i] = true;
                    frontier.push(r);
                }
            }
        }
        reached.into_iter().all(|x| x)
    }
    grow(n, k, 0, &mut subset, &adjacent, &mut out);
    out
}

/// A copy of `graph` keeping only the edges inside `rels` (the sub-database
/// the paper retrieves from in the Figure 8/9 experiments).
pub fn restrict_graph(graph: &SchemaGraph, rels: &[RelationId]) -> SchemaGraph {
    let schema = graph.schema().clone();
    let name = |r: RelationId| schema.relation(r).name().to_owned();
    let mut b = SchemaGraph::builder(schema.clone());
    for p in graph.projection_edges() {
        if rels.contains(&p.rel) {
            b = b
                .projection(
                    &name(p.rel),
                    schema.relation(p.rel).attr_name(p.attr),
                    p.weight,
                )
                .expect("projection exists in source graph");
        }
    }
    for j in graph.join_edges() {
        if rels.contains(&j.from) && rels.contains(&j.to) {
            b = b
                .join(
                    &name(j.from),
                    schema.relation(j.from).attr_name(j.from_attr),
                    &name(j.to),
                    schema.relation(j.to).attr_name(j.to_attr),
                    j.weight,
                )
                .expect("join exists in source graph");
        }
    }
    b.build().expect("restricted graph is valid")
}

/// `count` random live tuple ids of `rel`.
pub fn random_seed_tids(db: &Database, rel: RelationId, count: usize, seed: u64) -> Vec<TupleId> {
    let mut tids: Vec<TupleId> = db.table(rel).iter().map(|(tid, _)| tid).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    tids.shuffle(&mut rng);
    tids.truncate(count);
    tids
}

/// The result schema covering everything reachable from `origin` — computed
/// once per experiment configuration so that timed runs measure *only* the
/// Result Database Generator, like the paper's Figures 8–9.
pub fn full_result_schema(graph: &SchemaGraph, origin: RelationId) -> precis_core::ResultSchema {
    generate_result_schema(graph, &[origin], &DegreeConstraint::MinWeight(0.0))
}

/// One Result-Database-Generator run over a prepared result schema: returns
/// the generated précis (timing is the caller's business so Criterion can
/// wrap this directly).
#[allow(clippy::too_many_arguments)]
pub fn run_db_generation(
    db: &Database,
    graph: &SchemaGraph,
    schema: &precis_core::ResultSchema,
    origin: RelationId,
    seed_tids: &[TupleId],
    c_r: usize,
    strategy: RetrievalStrategy,
    postpone_by_in_degree: bool,
) -> PrecisDatabase {
    let seeds: HashMap<RelationId, Vec<TupleId>> = HashMap::from([(origin, seed_tids.to_vec())]);
    generate_result_database(
        db,
        graph,
        schema,
        &seeds,
        &CardinalityConstraint::MaxTuplesPerRelation(c_r),
        strategy,
        &DbGenOptions {
            repair_foreign_keys: false,
            postpone_by_in_degree,
            ..DbGenOptions::default()
        },
    )
    .expect("generation succeeds")
}

/// Random tuple ids drawn from the first `range` tids of `rel` — used with
/// [`precis_datagen::chain_db_fanout`], whose joining parents live in the
/// leading id range.
pub fn random_seed_tids_in_range(
    db: &Database,
    rel: RelationId,
    range: usize,
    count: usize,
    seed: u64,
) -> Vec<TupleId> {
    let mut tids: Vec<TupleId> = db
        .table(rel)
        .iter()
        .map(|(tid, _)| tid)
        .filter(|tid| tid.as_usize() < range)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    tids.shuffle(&mut rng);
    tids.truncate(count);
    tids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_sets_of_the_movies_schema() {
        let g = bench_movies_graph();
        let sets = connected_relation_sets(&g, 4);
        assert!(!sets.is_empty());
        // THEATRE-GENRE-ACTOR-DIRECTOR is not connected; make sure nothing
        // like it sneaks in: every set must induce a connected subgraph.
        for set in &sets {
            assert_eq!(set.len(), 4);
        }
        let singles = connected_relation_sets(&g, 1);
        assert_eq!(singles.len(), 7);
    }

    #[test]
    fn restricted_graph_drops_outside_edges() {
        let g = bench_movies_graph();
        let s = g.schema();
        let movie = s.relation_id("MOVIE").unwrap();
        let genre = s.relation_id("GENRE").unwrap();
        let director = s.relation_id("DIRECTOR").unwrap();
        let r = restrict_graph(&g, &[movie, genre]);
        assert!(r.find_join(movie, genre).is_some());
        assert!(r.find_join(movie, director).is_none());
        assert!(r
            .projection_edges()
            .iter()
            .all(|p| p.rel == movie || p.rel == genre));
    }

    #[test]
    fn db_generation_run_populates_the_set() {
        let db = MoviesGenerator::new(MoviesConfig {
            movies: 200,
            directors: 30,
            actors: 80,
            theatres: 10,
            plays: 300,
            seed: 3,
            ..MoviesConfig::default()
        })
        .generate();
        let g = bench_movies_graph();
        let s = g.schema();
        let set = vec![
            s.relation_id("DIRECTOR").unwrap(),
            s.relation_id("MOVIE").unwrap(),
            s.relation_id("GENRE").unwrap(),
            s.relation_id("CAST").unwrap(),
        ];
        let restricted = restrict_graph(&g, &set);
        let origin = set[0];
        let seeds = random_seed_tids(&db, origin, 10, 1);
        let schema = full_result_schema(&restricted, origin);
        let p = run_db_generation(
            &db,
            &restricted,
            &schema,
            origin,
            &seeds,
            10,
            RetrievalStrategy::NaiveQ,
            true,
        );
        assert_eq!(p.collected.len(), 4, "all four relations populated");
        for tids in p.collected.values() {
            assert!(tids.len() <= 10);
        }
    }
}
