//! Closed-loop load generation against an in-process `precis-server` over
//! loopback: N client threads each issue a stream of `/v1/query` requests
//! and time every response. The summary — throughput, p50/p95/p99 latency,
//! rejection rate under admission control, and the cost-aware scheduler's
//! coalesce/shed accounting — is committed as `BENCH_PR8.json` so
//! successive PRs track the serving path the same way `BENCH_PR7.json`
//! tracks the answer pipeline.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p precis-bench --bin load_gen -- BENCH_PR2.json
//! ```

use precis_core::{CostModel, PrecisEngine};
use precis_datagen::{movies_graph, movies_vocabulary, MoviesConfig, MoviesGenerator};
use precis_server::{Server, ServerConfig};
use precis_storage::{Database, Value};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Load-run shape. The defaults model a sanely provisioned server — client
/// concurrency below `workers + queue_capacity` — so the committed
/// `BENCH_PR2.json` tracks real serving throughput and latency rather than
/// a wall of 429s (an earlier default rejected 91% of requests, which made
/// every other number in the report meaningless). [`LoadConfig::quick`]
/// stays deliberately overloaded so admission control is still exercised in
/// tests.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Synthetic movies database size.
    pub movies: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Server admission-queue capacity.
    pub queue_capacity: usize,
    /// Concurrent client threads (keep below workers + queue for a
    /// representative run; push above it to stress admission control).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Server default deadline, milliseconds.
    pub deadline_ms: u64,
    /// Percentage (0–100) of requests drawn from one hot body instead of
    /// the rotating mix. Duplicates arriving concurrently coalesce into a
    /// single execution, so this knob directly exercises single-flight.
    pub duplicate_pct: u8,
    /// Run the server with always-on telemetry (trace ids on every request,
    /// per-request span capture, tail sampling, SLO counters). Off by
    /// default so historical reports stay comparable; the `--pr10` overhead
    /// measurement runs the same shape both ways.
    pub telemetry: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            movies: 1_000,
            workers: 4,
            queue_capacity: 16,
            clients: 12,
            requests_per_client: 50,
            deadline_ms: 5_000,
            duplicate_pct: 0,
            telemetry: false,
        }
    }
}

impl LoadConfig {
    /// A seconds-scale configuration for tests and CI smoke runs.
    pub fn quick() -> Self {
        LoadConfig {
            movies: 200,
            workers: 1,
            queue_capacity: 1,
            clients: 8,
            requests_per_client: 20,
            deadline_ms: 5_000,
            duplicate_pct: 50,
            telemetry: false,
        }
    }

    /// The `BENCH_PR8.json` shape: a duplicate-heavy burst (clients start
    /// behind a barrier) against the cost-aware scheduler, so coalescing
    /// and admission pricing carry the run rather than raw fan-out.
    pub fn pr8() -> Self {
        LoadConfig {
            movies: 1_000,
            workers: 4,
            queue_capacity: 32,
            clients: 16,
            requests_per_client: 50,
            deadline_ms: 5_000,
            duplicate_pct: 80,
            telemetry: false,
        }
    }
}

/// Outcome counts and latency summary of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub config: LoadConfig,
    pub wall_secs: f64,
    pub requests_total: usize,
    pub ok: usize,
    pub rejected: usize,
    pub deadline_exceeded: usize,
    pub other: usize,
    /// Successful (200) responses per second of wall time.
    pub throughput_rps: f64,
    /// 429s (shed at admission) as a fraction of all requests.
    pub rejection_rate: f64,
    /// Latency of successful responses, seconds.
    pub p50_secs: f64,
    pub p95_secs: f64,
    pub p99_secs: f64,
    pub mean_secs: f64,
    /// Server-side counters at the end of the run, for cross-checking.
    pub server_rejected_total: u64,
    pub server_deadline_exceeded_total: u64,
    pub server_queue_depth_final: u64,
    /// Server-side admission-queue wait, from `precis_queue_wait_seconds`.
    pub queue_wait: HistSummary,
    /// Server-side `/query` service time (worker pickup → response written;
    /// queue wait excluded), from
    /// `precis_request_duration_seconds{endpoint="query"}`.
    pub service_time: HistSummary,
    /// Responses served by joining another request's in-flight execution.
    pub coalesced_total: u64,
    /// `coalesced_total` over all 200s: the fraction of successful answers
    /// that cost no execution of their own.
    pub coalesce_hit_rate: f64,
    /// Parsed queries shed by the cost-aware scheduler (queue-capacity or
    /// deadline sheds; connection-stage refusals are
    /// `server_rejected_total`).
    pub shed_total: u64,
    /// Sheds the scheduler's hindsight cost ratio judged unnecessary.
    pub shed_false_positive_total: u64,
    pub shed_false_positive_rate: f64,
    /// Pops where cost ordering disagreed with FIFO arrival order.
    pub reordered_total: u64,
    /// Formula-2 accountability over the whole run, scraped from
    /// `precis_cost_model_{predicted,measured}_seconds_total`: the ratio is
    /// the model's aggregate accuracy (1.0 = perfectly calibrated).
    pub predicted_seconds_total: f64,
    pub measured_seconds_total: f64,
    pub measured_over_predicted: f64,
}

/// Summary of one server-side histogram. Quantiles are bucket upper bounds
/// (the same resolution a Prometheus query would see); the mean is exact.
#[derive(Debug, Clone)]
pub struct HistSummary {
    pub count: u64,
    pub p50_secs: f64,
    pub p95_secs: f64,
    pub mean_secs: f64,
}

impl HistSummary {
    fn from(h: &precis_server::metrics::Histogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            p50_secs: h.quantile(0.50).unwrap_or(0.0),
            p95_secs: h.quantile(0.95).unwrap_or(0.0),
            mean_secs: h.mean_secs().unwrap_or(0.0),
        }
    }

    fn to_json_inline(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50\": {:.6}, \"p95\": {:.6}, \"mean\": {:.6}}}",
            self.count, self.p50_secs, self.p95_secs, self.mean_secs
        )
    }
}

/// Exact percentile of a sorted sample set (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Rotating request bodies: mixed strategies and constraints so the run
/// exercises cached and uncached answer paths. `BODIES[0]` doubles as the
/// hot body that `duplicate_pct` concentrates load onto.
const BODIES: [&str; 4] = [
    r#"{"tokens": "comedy", "degree": {"minweight": 0.5}}"#,
    r#"{"tokens": ["drama", "thriller"], "cardinality": {"perrel": 20}}"#,
    r#"{"tokens": "action", "strategy": "naive", "degree": {"minweight": 0.3}}"#,
    r#"{"tokens": "romance", "strategy": "topweight", "cardinality": {"total": 40}}"#,
];

fn one_request(addr: SocketAddr, body: &str) -> Option<(u16, Duration)> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .write_all(
            format!(
                "POST /v1/query HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .ok()?;
    // Collect whatever arrives. A 429 is written by the acceptor without
    // draining our request, so the close can RST the connection after the
    // response bytes — a read error past the status line still counts.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let response = String::from_utf8_lossy(&buf);
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, t0.elapsed()))
}

/// Calibrate the Formula-2 micro-costs against the generated database (the
/// first indexed, populated attribute), so the scheduler prices queries at
/// admission during the run instead of flying blind.
fn calibrate(db: &Database) -> Option<CostModel> {
    for (rel, schema) in db.schema().relations() {
        if db.len(rel) == 0 {
            continue;
        }
        for attr in 0..schema.arity() {
            if !db.has_index(rel, attr) {
                continue;
            }
            let samples: Vec<Value> = db
                .table(rel)
                .iter()
                .take(32)
                .map(|(_, t)| t.values()[attr].clone())
                .collect();
            if let Some(model) = CostModel::calibrate(db, rel, attr, &samples, 8) {
                return Some(model);
            }
        }
    }
    None
}

/// One raw `GET /v1/metrics` scrape; empty on any transport error.
fn fetch_metrics(addr: SocketAddr) -> String {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return String::new();
    };
    if stream
        .write_all(b"GET /v1/metrics HTTP/1.1\r\nHost: load\r\n\r\n")
        .is_err()
    {
        return String::new();
    }
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// Value of an unlabeled counter in a Prometheus exposition, 0.0 if absent.
fn scrape_counter(exposition: &str, family: &str) -> f64 {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            l.strip_prefix(family)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or(0.0)
}

/// Build the shared world one load run (or every slice of an interleaved
/// run) serves: generated database, vocabulary, calibrated engine.
fn build_world(config: &LoadConfig) -> (Arc<PrecisEngine>, precis_nlg::Vocabulary) {
    let db = MoviesGenerator::new(MoviesConfig {
        movies: config.movies,
        directors: (config.movies / 12).max(1),
        actors: (config.movies / 2).max(1),
        theatres: (config.movies / 60).max(1),
        plays: config.movies * 2,
        seed: 0x10AD,
        ..MoviesConfig::default()
    })
    .generate();
    let vocab = movies_vocabulary(db.schema());
    let cost_model = calibrate(&db);
    let mut engine = PrecisEngine::new(db, movies_graph()).expect("engine builds");
    if let Some(model) = cost_model {
        engine.set_cost_model(model);
    }
    (Arc::new(engine), vocab)
}

/// Start one server over the shared engine, with or without telemetry.
fn start_server(
    engine: &Arc<PrecisEngine>,
    vocab: &precis_nlg::Vocabulary,
    config: &LoadConfig,
    telemetry: bool,
) -> precis_server::ServerHandle {
    Server::start(
        Arc::clone(engine),
        Some(vocab.clone()),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            default_deadline: Some(Duration::from_millis(config.deadline_ms)),
            telemetry: telemetry.then(precis_obs::TelemetryConfig::default),
            ..ServerConfig::default()
        },
    )
    .expect("server starts")
}

/// One synchronized client burst: every client thread starts behind a
/// barrier so the run opens with a genuine burst — the arrival pattern that
/// makes duplicates concurrent and therefore coalescable. `seed` varies the
/// body sequence between slices of an interleaved run (zero reproduces the
/// classic single-run sequence).
fn run_clients(addr: SocketAddr, config: &LoadConfig, seed: usize) -> Vec<(u16, Duration)> {
    run_clients_multi(&[addr], config, seed, 0)
        .pop()
        .expect("one outcome bucket per address")
}

/// The same synchronized burst spread over several co-resident servers:
/// client `c` spends the whole burst on `addrs[(c + rotate) % addrs.len()]`,
/// so each server runs an *independent* closed loop over its share of the
/// clients while both experience the same instants of host noise. The
/// assignment rotates with `rotate` (one step per round) so every client
/// thread visits every server equally across a run. Clients must not
/// alternate per request: closed-loop alternation pins the servers to
/// identical throughput, which lets client concurrency migrate toward the
/// slower server and amplifies any service-time difference into an
/// unbounded latency ratio. Outcomes come back bucketed by server index.
fn run_clients_multi(
    addrs: &[SocketAddr],
    config: &LoadConfig,
    seed: usize,
    rotate: usize,
) -> Vec<Vec<(u16, Duration)>> {
    let barrier = Arc::new(Barrier::new(config.clients));
    let addrs: Vec<SocketAddr> = addrs.to_vec();
    let clients: Vec<_> = (0..config.clients)
        .map(|c| {
            let requests = config.requests_per_client;
            let duplicate_pct = config.duplicate_pct as usize;
            let barrier = Arc::clone(&barrier);
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut outcomes: Vec<Vec<(u16, Duration)>> = vec![Vec::new(); addrs.len()];
                barrier.wait();
                for r in 0..requests {
                    // Deterministic per-(client, round) coin: the hot body
                    // for duplicate_pct% of requests, the rotation otherwise.
                    let body = if (c * 37 + (seed + r) * 11) % 100 < duplicate_pct {
                        BODIES[0]
                    } else {
                        BODIES[(c + seed + r) % BODIES.len()]
                    };
                    let which = (c + rotate) % addrs.len();
                    if let Some(outcome) = one_request(addrs[which], body) {
                        outcomes[which].push(outcome);
                    }
                }
                outcomes
            })
        })
        .collect();
    let mut merged: Vec<Vec<(u16, Duration)>> = vec![Vec::new(); addrs.len()];
    for client in clients {
        for (which, outcomes) in client
            .join()
            .expect("client thread")
            .into_iter()
            .enumerate()
        {
            merged[which].extend(outcomes);
        }
    }
    merged
}

/// Server-side counters accumulated over one or more server lifetimes.
#[derive(Default)]
struct ServerCounters {
    rejected: u64,
    deadline_exceeded: u64,
    queue_depth_final: u64,
    coalesced: u64,
    shed: u64,
    shed_false_positive: u64,
    reordered: u64,
    predicted_seconds: f64,
    measured_seconds: f64,
    queue_wait: HistAcc,
    service_time: HistAcc,
}

/// Count-weighted accumulator for merging [`HistSummary`]s across server
/// lifetimes. The mean stays exact; quantiles are count-weighted averages
/// of per-lifetime bucket-resolution quantiles (each lifetime sees the same
/// workload shape, so the approximation is tight).
#[derive(Default)]
struct HistAcc {
    count: u64,
    sum_secs: f64,
    p50_weighted: f64,
    p95_weighted: f64,
}

impl HistAcc {
    fn add(&mut self, h: &HistSummary) {
        self.count += h.count;
        self.sum_secs += h.mean_secs * h.count as f64;
        self.p50_weighted += h.p50_secs * h.count as f64;
        self.p95_weighted += h.p95_secs * h.count as f64;
    }

    fn summary(&self) -> HistSummary {
        let n = self.count.max(1) as f64;
        HistSummary {
            count: self.count,
            p50_secs: self.p50_weighted / n,
            p95_secs: self.p95_weighted / n,
            mean_secs: self.sum_secs / n,
        }
    }
}

impl ServerCounters {
    /// Scrape one server (exposition plus in-process metrics) and fold its
    /// counters in. Call before shutdown.
    fn absorb(&mut self, handle: &precis_server::ServerHandle) {
        // The cost-model accountability counters live in the per-server
        // phase aggregates, not in `Metrics`, so they come off the wire.
        let exposition = fetch_metrics(handle.local_addr());
        self.predicted_seconds +=
            scrape_counter(&exposition, "precis_cost_model_predicted_seconds_total");
        self.measured_seconds +=
            scrape_counter(&exposition, "precis_cost_model_measured_seconds_total");
        let metrics = handle.metrics();
        self.rejected += metrics.rejected_total();
        self.deadline_exceeded += metrics.deadline_exceeded_total();
        self.queue_depth_final = metrics.queue_depth();
        self.coalesced += metrics.coalesced_total();
        self.shed += metrics.shed_total();
        self.shed_false_positive += metrics.shed_false_positive_total();
        self.reordered += metrics.reordered_total();
        self.queue_wait.add(&HistSummary::from(&metrics.queue_wait));
        self.service_time
            .add(&HistSummary::from(metrics.duration("query")));
    }
}

/// Fold client outcomes and server counters into a [`LoadReport`].
fn summarize(
    config: LoadConfig,
    requests_total: usize,
    outcomes: &[(u16, Duration)],
    wall_secs: f64,
    counters: &ServerCounters,
) -> LoadReport {
    let mut ok_latencies: Vec<f64> = Vec::new();
    let (mut ok, mut rejected, mut deadline_exceeded, mut other) = (0usize, 0usize, 0usize, 0usize);
    for (status, latency) in outcomes {
        match status {
            200 => {
                ok += 1;
                ok_latencies.push(latency.as_secs_f64());
            }
            429 => rejected += 1,
            504 => deadline_exceeded += 1,
            _ => other += 1,
        }
    }
    LoadReport {
        requests_total,
        ok,
        rejected,
        deadline_exceeded,
        other,
        throughput_rps: if wall_secs > 0.0 {
            ok as f64 / wall_secs
        } else {
            0.0
        },
        rejection_rate: rejected as f64 / requests_total.max(1) as f64,
        p50_secs: {
            ok_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            percentile(&ok_latencies, 0.50)
        },
        p95_secs: percentile(&ok_latencies, 0.95),
        p99_secs: percentile(&ok_latencies, 0.99),
        mean_secs: if ok_latencies.is_empty() {
            0.0
        } else {
            ok_latencies.iter().sum::<f64>() / ok_latencies.len() as f64
        },
        server_rejected_total: counters.rejected,
        server_deadline_exceeded_total: counters.deadline_exceeded,
        server_queue_depth_final: counters.queue_depth_final,
        queue_wait: counters.queue_wait.summary(),
        service_time: counters.service_time.summary(),
        coalesced_total: counters.coalesced,
        coalesce_hit_rate: counters.coalesced as f64 / ok.max(1) as f64,
        shed_total: counters.shed,
        shed_false_positive_total: counters.shed_false_positive,
        shed_false_positive_rate: if counters.shed > 0 {
            counters.shed_false_positive as f64 / counters.shed as f64
        } else {
            0.0
        },
        reordered_total: counters.reordered,
        predicted_seconds_total: counters.predicted_seconds,
        measured_seconds_total: counters.measured_seconds,
        measured_over_predicted: if counters.predicted_seconds > 0.0 {
            counters.measured_seconds / counters.predicted_seconds
        } else {
            0.0
        },
        wall_secs,
        config,
    }
}

/// Run the closed loop: start a server, hammer it, summarize.
pub fn run_load(config: LoadConfig) -> LoadReport {
    let (engine, vocab) = build_world(&config);
    let handle = start_server(&engine, &vocab, &config, config.telemetry);
    let t0 = Instant::now();
    let outcomes = run_clients(handle.local_addr(), &config, 0);
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut counters = ServerCounters::default();
    counters.absorb(&handle);
    let requests_total = config.clients * config.requests_per_client;
    let report = summarize(config, requests_total, &outcomes, wall_secs, &counters);
    handle.join();
    report
}

/// Telemetry-overhead A/B against two co-resident servers.
///
/// Whole-run A/B cannot resolve a small overhead on a shared machine:
/// back-to-back runs of the *same* configuration here swing ±30% as noisy
/// neighbors come and go, and even time-sliced alternation leaves the two
/// modes seconds apart — per-burst p50s on this host scatter ±20%, so a
/// sub-2% gate could never be resolved sequentially. Instead both servers
/// run *simultaneously* over one shared engine, each serving an
/// independent closed loop over half the client threads (halves swap every
/// round): the two modes see the same client mix, the same body mix, and
/// the same instants of machine noise, so the drift cancels at millisecond
/// granularity inside every round.
///
/// One caveat is inherent: arming is process-global, so while the
/// telemetry-on server is alive the off server's span sites are not the
/// true disarmed fast path — they pay the inert capture-only check (a few
/// relaxed loads) instead of one. That cost is measured separately and
/// reported as `disarmed_span_site_ns` (single-digit nanoseconds per
/// site); the paired delta therefore isolates everything else: identity,
/// capture, sampling, retention, and SLO accounting.
///
/// `config.requests_per_client` is the per-round count; round 0 is an
/// unmeasured warmup that also drains the retention bucket's initial
/// burst, so measured rounds see steady-state rate-limited retention.
pub struct CoresidentAb {
    pub off: LoadReport,
    pub on: LoadReport,
    /// Median over measured rounds of the per-round paired p50 delta
    /// (on vs off), in percent — the statistic the overhead gate reads.
    pub p50_delta_pct_median: f64,
}

pub fn run_coresident_ab(config: &LoadConfig, rounds: usize) -> CoresidentAb {
    let (engine, vocab) = build_world(config);
    let handles = [
        start_server(&engine, &vocab, config, false),
        start_server(&engine, &vocab, config, true),
    ];
    let addrs = [handles[0].local_addr(), handles[1].local_addr()];
    let mut outcomes: [Vec<(u16, Duration)>; 2] = [Vec::new(), Vec::new()];
    let mut walls = [0.0f64; 2];
    let mut round_deltas: Vec<f64> = Vec::with_capacity(rounds);
    for round in 0..rounds + 1 {
        let t0 = Instant::now();
        let got = run_clients_multi(&addrs, config, round * config.requests_per_client, round);
        let wall = t0.elapsed().as_secs_f64();
        if round == 0 {
            continue;
        }
        let mut round_p50 = [0.0f64; 2];
        for (mode, got) in got.into_iter().enumerate() {
            let mut ok: Vec<f64> = got
                .iter()
                .filter(|(status, _)| *status == 200)
                .map(|(_, d)| d.as_secs_f64())
                .collect();
            ok.sort_by(|a, b| a.total_cmp(b));
            round_p50[mode] = percentile(&ok, 0.50);
            outcomes[mode].extend(got);
            walls[mode] += wall;
        }
        if round_p50[0] > 0.0 {
            let delta = (round_p50[1] - round_p50[0]) / round_p50[0] * 100.0;
            if std::env::var_os("PRECIS_AB_VERBOSE").is_some() {
                eprintln!(
                    "round {round:>3}: off p50 {:>7.0}us  on p50 {:>7.0}us  delta {delta:+.2}%",
                    round_p50[0] * 1e6,
                    round_p50[1] * 1e6,
                );
            }
            round_deltas.push(delta);
        }
    }
    let mut counters = [ServerCounters::default(), ServerCounters::default()];
    for (mode, handle) in handles.iter().enumerate() {
        counters[mode].absorb(handle);
    }
    for handle in handles {
        handle.trigger_shutdown();
        handle.join();
    }
    round_deltas.sort_by(|a, b| a.total_cmp(b));
    let p50_delta_pct_median = if round_deltas.is_empty() {
        0.0
    } else {
        round_deltas[round_deltas.len() / 2]
    };
    let report = |mode: usize, counters: &ServerCounters| {
        let mut cfg = config.clone();
        cfg.telemetry = mode == 1;
        // Each server answers half of every round's burst.
        cfg.requests_per_client = config.requests_per_client * rounds / 2;
        let requests_total = cfg.clients * cfg.requests_per_client;
        summarize(cfg, requests_total, &outcomes[mode], walls[mode], counters)
    };
    CoresidentAb {
        off: report(0, &counters[0]),
        on: report(1, &counters[1]),
        p50_delta_pct_median,
    }
}

impl LoadReport {
    pub fn to_json(&self) -> String {
        self.to_json_labeled("BENCH_PR2")
    }

    pub fn to_json_labeled(&self, label: &str) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{{\n  \"report\": \"{label}\",");
        let _ = writeln!(
            out,
            "  \"config\": {{\"movies\": {}, \"workers\": {}, \"queue_capacity\": {}, \
             \"clients\": {}, \"requests_per_client\": {}, \"deadline_ms\": {}, \
             \"duplicate_pct\": {}, \"telemetry\": {}}},",
            self.config.movies,
            self.config.workers,
            self.config.queue_capacity,
            self.config.clients,
            self.config.requests_per_client,
            self.config.deadline_ms,
            self.config.duplicate_pct,
            self.config.telemetry
        );
        let _ = writeln!(out, "  \"wall_secs\": {:.6},", self.wall_secs);
        let _ = writeln!(out, "  \"requests_total\": {},", self.requests_total);
        let _ = writeln!(
            out,
            "  \"responses\": {{\"ok\": {}, \"rejected\": {}, \"deadline_exceeded\": {}, \
             \"other\": {}}},",
            self.ok, self.rejected, self.deadline_exceeded, self.other
        );
        let _ = writeln!(out, "  \"throughput_rps\": {:.3},", self.throughput_rps);
        let _ = writeln!(out, "  \"rejection_rate\": {:.6},", self.rejection_rate);
        if self.rejection_rate > 0.5 {
            let _ = writeln!(
                out,
                "  \"warning\": \"rejection_rate {:.2} — most requests were refused at \
                 admission; throughput and latency figures describe the surviving \
                 minority, not the configured load\",",
                self.rejection_rate
            );
        }
        let _ = writeln!(
            out,
            "  \"latency_secs\": {{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \
             \"mean\": {:.6}}},",
            self.p50_secs, self.p95_secs, self.p99_secs, self.mean_secs
        );
        let _ = writeln!(
            out,
            "  \"server\": {{\"rejected_total\": {}, \"deadline_exceeded_total\": {}, \
             \"queue_depth_final\": {}}},",
            self.server_rejected_total,
            self.server_deadline_exceeded_total,
            self.server_queue_depth_final
        );
        let _ = writeln!(
            out,
            "  \"scheduler\": {{\"coalesced_total\": {}, \"coalesce_hit_rate\": {:.6}, \
             \"shed_total\": {}, \"shed_false_positive_total\": {}, \
             \"shed_false_positive_rate\": {:.6}, \"reordered_total\": {}}},",
            self.coalesced_total,
            self.coalesce_hit_rate,
            self.shed_total,
            self.shed_false_positive_total,
            self.shed_false_positive_rate,
            self.reordered_total
        );
        let _ = writeln!(
            out,
            "  \"cost_model\": {{\"predicted_seconds_total\": {:.6}, \
             \"measured_seconds_total\": {:.6}, \"measured_over_predicted\": {:.6}}},",
            self.predicted_seconds_total, self.measured_seconds_total, self.measured_over_predicted
        );
        let _ = writeln!(
            out,
            "  \"queue_wait_secs\": {},",
            self.queue_wait.to_json_inline()
        );
        let _ = writeln!(
            out,
            "  \"service_time_secs\": {}",
            self.service_time.to_json_inline()
        );
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_run_exercises_admission_control() {
        let report = run_load(LoadConfig::quick());
        assert_eq!(
            report.ok + report.rejected + report.deadline_exceeded + report.other,
            report.requests_total,
            "every issued request is accounted for"
        );
        assert!(report.ok > 0, "some requests succeed");
        assert!(
            report.rejected > 0,
            "8 clients against 1 worker + 1 queue slot must see 429s"
        );
        // Client-side 429s decompose into connection-stage refusals plus
        // query-stage sheds — the server accounts for every one.
        assert_eq!(
            report.rejected as u64,
            report.server_rejected_total + report.shed_total
        );
        // The run calibrates a cost model up front, so the accountability
        // counters are live and the aggregate ratio is well-defined.
        assert!(report.predicted_seconds_total > 0.0);
        assert!(report.measured_over_predicted > 0.0);
        assert!(report.coalesce_hit_rate <= 1.0);
        assert!(report.p50_secs <= report.p95_secs && report.p95_secs <= report.p99_secs);
        assert!(report.throughput_rps > 0.0);
        // Queue wait and service time are recorded separately server-side;
        // every 200 contributes one service-time observation, and every
        // admitted connection one queue-wait observation.
        assert!(report.service_time.count >= report.ok as u64);
        assert!(report.queue_wait.count >= report.service_time.count);
        assert!(report.service_time.mean_secs > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"report\": \"BENCH_PR2\""));
        assert!(json.contains("\"throughput_rps\""));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"queue_wait_secs\""));
        assert!(json.contains("\"service_time_secs\""));
        assert!(json.contains("\"scheduler\""));
        assert!(json.contains("\"coalesce_hit_rate\""));
        assert!(json.contains("\"cost_model\""));
        assert!(json.contains("\"duplicate_pct\": 50"));
        assert!(report
            .to_json_labeled("BENCH_PR5")
            .contains("\"report\": \"BENCH_PR5\""));
    }

    #[test]
    fn default_config_is_provisioned_for_its_offered_load() {
        let c = LoadConfig::default();
        assert!(
            c.clients <= c.workers + c.queue_capacity,
            "default closed-loop concurrency ({} clients) must fit within \
             workers + queue ({} + {}) so the committed report measures \
             serving, not mass rejection",
            c.clients,
            c.workers,
            c.queue_capacity
        );
    }

    #[test]
    fn json_carries_a_warning_when_rejections_dominate() {
        let mut report = run_load(LoadConfig {
            movies: 50,
            workers: 1,
            queue_capacity: 1,
            clients: 4,
            requests_per_client: 5,
            deadline_ms: 5_000,
            duplicate_pct: 0,
            telemetry: true,
        });
        report.rejection_rate = 0.91;
        assert!(report.to_json().contains("\"warning\""));
        report.rejection_rate = 0.05;
        assert!(!report.to_json().contains("\"warning\""));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&samples, 0.50), 5.0);
        assert_eq!(percentile(&samples, 0.95), 10.0);
        assert_eq!(percentile(&samples, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
