//! PR-trajectory benchmark snapshot: a compact JSON report of the answer
//! pipeline's wall-clock medians, throughput, cache behavior, and thread
//! count, committed as `BENCH_PR7.json` so successive PRs can track the
//! trajectory of the same workloads over time.
//!
//! The workloads mirror the paper's evaluation (§6): a Figure-7-style
//! schema-generator sweep, a Figure-8-style database-generator run, a
//! Figure-9 NaïveQ vs Round-Robin pair, plus an end-to-end multi-token
//! [`PrecisEngine`] workload that exercises the parallel index-lookup path
//! and the answer caches. The `wal_append_*` / `recovery_replay` workloads
//! track the durability subsystem: append throughput under each fsync
//! policy, and crash-recovery replay speed.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p precis-bench --bin bench_report -- BENCH_PR7.json
//! ```

use crate::workloads::{
    bench_movies_graph, connected_relation_sets, full_result_schema, random_seed_tids,
    random_seed_tids_in_range, restrict_graph, run_db_generation,
};
use precis_core::{
    generate_result_schema, AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine,
    PrecisQuery, RetrievalStrategy,
};
use precis_datagen::{chain_db_fanout, movies_graph, MoviesConfig, MoviesGenerator};
use precis_durability::{recover, DurableStore, FsyncPolicy, Wal};
use precis_storage::{Database, RelationId, TupleId, Value, WalOp};
use std::fmt::Write as _;
use std::time::Instant;

/// Label stamped into the JSON snapshot; bumped when a PR regenerates the
/// committed report.
pub const REPORT_LABEL: &str = "BENCH_PR7";

/// Scale knob: `quick` keeps every workload under a second for tests;
/// `full` is the committed-report configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

/// One benchmarked workload.
#[derive(Debug, Clone)]
pub struct WorkloadStat {
    pub name: &'static str,
    /// Timed runs contributing samples.
    pub runs: usize,
    /// Median per-run wall time, seconds.
    pub median_secs: f64,
    /// Tuples retrieved across all runs divided by total wall time;
    /// `None` for workloads that do not retrieve tuples (schema generation).
    pub tuples_per_sec: Option<f64>,
    /// Final schema-cache hit rate, for engine workloads.
    pub schema_hit_rate: Option<f64>,
    /// Final token-cache hit rate, for engine workloads.
    pub token_hit_rate: Option<f64>,
}

/// The full report: thread count plus one entry per workload.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads the parallel paths fan out over
    /// ([`rayon::current_num_threads`]).
    pub threads: usize,
    pub workloads: Vec<WorkloadStat>,
    /// Armed-vs-disarmed tracing overhead over the pipeline workload.
    pub tracing: Option<TracingOverhead>,
}

/// Median of the samples (mean of the middle pair for even counts).
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn stat_from_samples(
    name: &'static str,
    mut samples: Vec<f64>,
    tuples: Option<usize>,
) -> WorkloadStat {
    let total: f64 = samples.iter().sum();
    let tuples_per_sec = tuples.map(|t| if total > 0.0 { t as f64 / total } else { 0.0 });
    WorkloadStat {
        name,
        runs: samples.len(),
        median_secs: median(&mut samples),
        tuples_per_sec,
        schema_hit_rate: None,
        token_hit_rate: None,
    }
}

/// Figure-7-style workload: schema generation over every origin of the
/// movies graph under a top-projections degree constraint.
fn schema_generator_workload(scale: Scale) -> WorkloadStat {
    let graph = bench_movies_graph();
    let repeats = match scale {
        Scale::Quick => 3,
        Scale::Full => 50,
    };
    let origins: Vec<RelationId> = graph.schema().relations().map(|(id, _)| id).collect();
    let constraint = DegreeConstraint::TopProjections(8);
    let mut samples = Vec::new();
    for _ in 0..repeats {
        for &r0 in &origins {
            let t0 = Instant::now();
            let rs = generate_result_schema(&graph, &[r0], &constraint);
            samples.push(t0.elapsed().as_secs_f64());
            assert!(rs.relation_count() > 0);
        }
    }
    stat_from_samples("fig7_schema_generator", samples, None)
}

/// Figure-8-style workload: database generation over connected 4-relation
/// sets of a synthetic movies database, NaïveQ, `c_R = 50`.
fn db_generator_workload(scale: Scale) -> WorkloadStat {
    let (movies, max_sets, seed_sets) = match scale {
        Scale::Quick => (300, 2, 1),
        Scale::Full => (5_000, 10, 5),
    };
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 12).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 60).max(1),
        plays: movies * 2,
        seed: 0xF168,
        ..MoviesConfig::default()
    })
    .generate();
    let graph = bench_movies_graph();
    let c_r = 50;
    let mut samples = Vec::new();
    let mut tuples = 0usize;
    for (i, set) in connected_relation_sets(&graph, 4)
        .into_iter()
        .take(max_sets)
        .enumerate()
    {
        let g = restrict_graph(&graph, &set);
        for &origin in &set {
            let schema = full_result_schema(&g, origin);
            for s in 0..seed_sets {
                let seeds = random_seed_tids(&db, origin, c_r, (i * 31 + s) as u64);
                let t0 = Instant::now();
                let p = run_db_generation(
                    &db,
                    &g,
                    &schema,
                    origin,
                    &seeds,
                    c_r,
                    RetrievalStrategy::NaiveQ,
                    true,
                );
                samples.push(t0.elapsed().as_secs_f64());
                tuples += p.total_tuples();
            }
        }
    }
    stat_from_samples("fig8_database_generator", samples, Some(tuples))
}

/// Figure-9-style workload: one strategy on a chain database with fan-out,
/// fixed `c_R`, exact control of `n_R`.
fn chain_workload(strategy: RetrievalStrategy, scale: Scale) -> WorkloadStat {
    let (rows, repeats) = match scale {
        Scale::Quick => (300, 3),
        Scale::Full => (2_000, 50),
    };
    let (n, c_r, fanout) = (6, 50, 4);
    let (db, graph) = chain_db_fanout(n, rows, fanout, 9 ^ n as u64);
    let r0 = graph.schema().relation_id("R0").expect("chain root");
    let schema = full_result_schema(&graph, r0);
    let seed_range = (rows / fanout).max(1);
    // Untimed warmup faults in caches and allocator arenas.
    let warmup = random_seed_tids_in_range(&db, r0, seed_range, c_r, 9);
    let _ = run_db_generation(&db, &graph, &schema, r0, &warmup, c_r, strategy, true);
    let mut samples = Vec::new();
    let mut tuples = 0usize;
    for rep in 0..repeats {
        let seeds = random_seed_tids_in_range(&db, r0, seed_range, c_r, 9 + rep as u64);
        let t0 = Instant::now();
        let p = run_db_generation(&db, &graph, &schema, r0, &seeds, c_r, strategy, true);
        samples.push(t0.elapsed().as_secs_f64());
        tuples += p.total_tuples();
    }
    let name = match strategy {
        RetrievalStrategy::NaiveQ => "fig9_chain_naiveq",
        RetrievalStrategy::RoundRobin => "fig9_chain_round_robin",
        RetrievalStrategy::TopWeight => "fig9_chain_top_weight",
    };
    stat_from_samples(name, samples, Some(tuples))
}

/// Postings microbench: galloping intersection over skewed sorted posting
/// lists — the primitive behind multi-word phrase lookups and the
/// generator's join probes. Stride-generated lists give controlled
/// selectivity and wildly unequal lengths, the regime galloping wins in.
fn postings_intersection_workload(scale: Scale) -> WorkloadStat {
    use precis_index::{intersect, intersect_many};
    let (universe, repeats) = match scale {
        Scale::Quick => (60_000u32, 3),
        Scale::Full => (2_000_000u32, 40),
    };
    let strides = [3usize, 7, 61, 509];
    let lists: Vec<Vec<u32>> = strides
        .iter()
        .map(|&s| (0..universe).step_by(s).collect())
        .collect();
    let slices: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
    let mut samples = Vec::new();
    let mut produced = 0usize;
    for _ in 0..repeats {
        let t0 = Instant::now();
        // A skewed pair (densest vs sparsest), a balanced pair, and the
        // full k-way intersection.
        produced += intersect(&lists[0], &lists[3]).len();
        produced += intersect(&lists[1], &lists[2]).len();
        produced += intersect_many(&slices).len();
        samples.push(t0.elapsed().as_secs_f64());
    }
    stat_from_samples("postings_intersection", samples, Some(produced))
}

/// Columnar-scan microbench: full passes over the synthetic movies
/// relations, reading one datum per row — the arena-slab read path every
/// scan-shaped operation (value scans, FK repair, NLG binding) sits on.
fn tuple_scan_workload(scale: Scale) -> WorkloadStat {
    let (movies, repeats) = match scale {
        Scale::Quick => (300, 3),
        Scale::Full => (20_000, 40),
    };
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 12).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 60).max(1),
        plays: movies * 2,
        seed: 0x5CA4,
        ..MoviesConfig::default()
    })
    .generate();
    let rels: Vec<RelationId> = db.schema().relations().map(|(id, _)| id).collect();
    let mut samples = Vec::new();
    let mut scanned = 0usize;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut checksum = 0i64;
        for &rel in &rels {
            for (_, t) in db.table(rel).iter() {
                if let Some(x) = t.datum(0).as_int() {
                    checksum = checksum.wrapping_add(x);
                }
                scanned += 1;
            }
        }
        std::hint::black_box(checksum);
        samples.push(t0.elapsed().as_secs_f64());
    }
    stat_from_samples("tuple_scan", samples, Some(scanned))
}

/// A fresh scratch directory under the system temp dir, unique per call.
fn wal_scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "precis-bench-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    dir
}

/// A representative mutation record: an int key, a median-length text, and
/// a float — roughly the shape of a movies-row insert.
fn wal_insert_op(i: u64) -> WalOp {
    WalOp::Insert {
        relation: "BENCH".to_owned(),
        tid: TupleId(i),
        values: vec![
            Value::from(i as i64),
            Value::from("a median-sized text payload for the log"),
            Value::from(0.5 + i as f64),
        ],
    }
}

/// Durability workload: raw WAL append throughput under one fsync policy,
/// each repeat ending with the group-commit barrier the server issues
/// before acknowledging a batch. `tuples_per_sec` is records per second.
fn wal_append_workload(policy: FsyncPolicy, scale: Scale) -> WorkloadStat {
    let (records, repeats) = match (policy, scale) {
        // Every append fsyncs: keep record counts small enough that the
        // workload stays seconds, not minutes, on spinning media.
        (FsyncPolicy::Always, Scale::Quick) => (50u64, 3),
        (FsyncPolicy::Always, Scale::Full) => (1_000, 5),
        (_, Scale::Quick) => (2_000, 3),
        (_, Scale::Full) => (100_000, 5),
    };
    let dir = wal_scratch_dir("wal-append");
    let path = dir.join("wal.log");
    let mut samples = Vec::new();
    let mut appended = 0usize;
    for _ in 0..repeats {
        let mut wal = Wal::create(&path, policy, 0).expect("bench wal creates");
        let t0 = Instant::now();
        for i in 0..records {
            wal.append_op(wal_insert_op(i)).expect("append succeeds");
        }
        wal.flush().expect("group-commit barrier");
        samples.push(t0.elapsed().as_secs_f64());
        appended += records as usize;
    }
    let _ = std::fs::remove_dir_all(&dir);
    let name = match policy {
        FsyncPolicy::Never => "wal_append_fsync_never",
        FsyncPolicy::Batch(_) => "wal_append_fsync_batch",
        FsyncPolicy::Always => "wal_append_fsync_always",
    };
    stat_from_samples(name, samples, Some(appended))
}

/// Durability workload: crash-recovery replay speed. A synthetic movies
/// database is logged as schema-install + one insert record per tuple, then
/// [`recover`] rebuilds it from the files alone; `tuples_per_sec` is
/// recovered tuples per second.
fn recovery_replay_workload(scale: Scale) -> WorkloadStat {
    let (movies, repeats) = match scale {
        Scale::Quick => (300, 3),
        Scale::Full => (5_000, 10),
    };
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 12).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 60).max(1),
        plays: movies * 2,
        seed: 0xD00D,
        ..MoviesConfig::default()
    })
    .generate();
    let dir = wal_scratch_dir("recovery");
    let store = DurableStore::open(&dir).expect("bench store opens");
    let mut wal = store
        .create_wal(FsyncPolicy::Never, 0)
        .expect("bench wal creates");
    let empty = Database::new(db.schema().clone()).expect("schema twin");
    wal.append_schema_install(&precis_storage::io::dump_to_string(&empty))
        .expect("schema-install record");
    for (rel, rs) in db.schema().relations() {
        for (tid, t) in db.table(rel).iter() {
            wal.append_op(WalOp::Insert {
                relation: rs.name().to_owned(),
                tid,
                values: t.values().to_vec(),
            })
            .expect("insert record");
        }
    }
    drop(wal);
    let mut samples = Vec::new();
    let mut recovered_tuples = 0usize;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let rec = recover(&dir)
            .expect("recovery succeeds")
            .expect("database materializes");
        samples.push(t0.elapsed().as_secs_f64());
        assert!(rec.report.truncated.is_none(), "clean log replays cleanly");
        recovered_tuples += rec.db.total_tuples();
    }
    let _ = std::fs::remove_dir_all(&dir);
    stat_from_samples("recovery_replay", samples, Some(recovered_tuples))
}

/// The PR 1 pipeline fixture: a synthetic movies engine plus the rotating
/// multi-token queries the `multi_token_engine` workload times. Shared with
/// the tracing-overhead measurement so both observe the same workload.
fn pipeline_fixture(scale: Scale) -> (PrecisEngine, AnswerSpec, [PrecisQuery; 3]) {
    let movies = match scale {
        Scale::Quick => 300,
        Scale::Full => 2_000,
    };
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 12).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 60).max(1),
        plays: movies * 2,
        seed: 0xE26,
        ..MoviesConfig::default()
    })
    .generate();
    let engine = PrecisEngine::new(db, movies_graph()).expect("engine builds");
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.5),
        CardinalityConstraint::MaxTuplesPerRelation(20),
    );
    let queries = [
        PrecisQuery::new(["comedy", "drama", "thriller"]),
        PrecisQuery::new(["romance", "action", "horror"]),
        PrecisQuery::new(["sci-fi", "documentary", "comedy"]),
    ];
    (engine, spec, queries)
}

/// End-to-end engine workload: multi-token précis queries answered
/// repeatedly, so index lookups fan out across threads on cold tokens and
/// the schema/token caches absorb the repeats.
fn engine_workload(scale: Scale) -> WorkloadStat {
    let rounds = match scale {
        Scale::Quick => 12,
        Scale::Full => 25,
    };
    let (engine, spec, queries) = pipeline_fixture(scale);
    let mut samples = Vec::new();
    let mut tuples = 0usize;
    for _ in 0..rounds {
        for q in &queries {
            let t0 = Instant::now();
            let a = engine.answer(q, &spec).expect("query answers");
            samples.push(t0.elapsed().as_secs_f64());
            tuples += a.precis.total_tuples();
        }
    }
    let stats = engine.cache_stats();
    let mut stat = stat_from_samples("multi_token_engine", samples, Some(tuples));
    stat.schema_hit_rate = Some(stats.schema_hit_rate());
    stat.token_hit_rate = Some(stats.token_hit_rate());
    stat
}

/// Tracing-overhead measurement over the PR 1 pipeline workload: the same
/// engine and queries timed in three observation modes.
///
/// * `disarmed` — tracer off, no profile: every span site is one relaxed
///   atomic load (the production default).
/// * `profiled` — a [`precis_obs::QueryProfile`] attached per query, tracer
///   still off (what every `/query` pays for the slow log and phase
///   aggregates).
/// * `armed` — tracer armed *and* a profile attached (the fully observed
///   path behind `explain --trace-out`).
///
/// A disarmed build without the instrumentation does not exist at runtime,
/// so the disarmed overhead is bounded from measurement instead: the cost
/// of one disarmed span site (timed over millions of calls) times the span
/// count a traced run of the same query records, relative to the disarmed
/// median.
#[derive(Debug, Clone)]
pub struct TracingOverhead {
    /// Timed samples per mode.
    pub runs: usize,
    pub disarmed_median_secs: f64,
    pub profiled_median_secs: f64,
    pub armed_median_secs: f64,
    /// Measured cost of one disarmed `span()` call, nanoseconds.
    pub disarmed_span_site_ns: f64,
    /// Spans an armed run of the workload's queries records, per query.
    pub spans_per_query: f64,
    /// Upper bound on the disarmed cost: `spans_per_query ×
    /// disarmed_span_site_ns` relative to the disarmed median.
    pub overhead_disarmed_pct: f64,
    /// `(profiled − disarmed) / disarmed`, percent.
    pub overhead_profiled_pct: f64,
    /// `(armed − disarmed) / disarmed`, percent.
    pub overhead_armed_pct: f64,
}

pub fn tracing_overhead(scale: Scale) -> TracingOverhead {
    use precis_obs::QueryProfile;
    use std::sync::Arc;

    let rounds = match scale {
        Scale::Quick => 6,
        Scale::Full => 40,
    };
    let (engine, spec, queries) = pipeline_fixture(scale);
    let profiled_spec = || {
        let mut s = spec.clone();
        s.options.profile = Some(Arc::new(QueryProfile::new()));
        s
    };

    // The armed phase mutates the process-wide tracer: serialize against
    // any other harness in this process.
    let _gate = precis_obs::exclusive();
    precis_obs::drain();

    // Warm caches and allocator arenas before timing anything.
    for q in &queries {
        let _ = engine.answer(q, &spec).expect("warmup answers");
    }

    let (mut disarmed, mut profiled, mut armed) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..rounds {
        // Modes interleave round by round so clock drift and cache effects
        // spread evenly instead of biasing whichever mode runs last.
        for q in &queries {
            let t0 = Instant::now();
            let _ = engine.answer(q, &spec).expect("disarmed answers");
            disarmed.push(t0.elapsed().as_secs_f64());
        }
        for q in &queries {
            let s = profiled_spec();
            let t0 = Instant::now();
            let _ = engine.answer(q, &s).expect("profiled answers");
            profiled.push(t0.elapsed().as_secs_f64());
        }
        {
            let guard = precis_obs::arm();
            for q in &queries {
                let s = profiled_spec();
                let t0 = Instant::now();
                let _ = engine.answer(q, &s).expect("armed answers");
                armed.push(t0.elapsed().as_secs_f64());
            }
            drop(guard);
            precis_obs::drain();
        }
    }

    // Span volume of one fully traced pass over the query set.
    let spans_per_query = {
        let guard = precis_obs::arm();
        precis_obs::drain();
        for q in &queries {
            let _ = engine.answer(q, &profiled_spec()).expect("span-count run");
        }
        let drained = precis_obs::drain();
        drop(guard);
        drained.spans.len() as f64 / queries.len() as f64
    };

    // Disarmed span-site cost: must run with the tracer off.
    let disarmed_span_site_ns = {
        let iters = 4_000_000u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(precis_obs::span("bench.disarmed_site"));
        }
        t0.elapsed().as_nanos() as f64 / iters as f64
    };

    let runs = disarmed.len();
    let disarmed_median_secs = median(&mut disarmed);
    let profiled_median_secs = median(&mut profiled);
    let armed_median_secs = median(&mut armed);
    let pct = |m: f64| (m - disarmed_median_secs) / disarmed_median_secs * 100.0;
    TracingOverhead {
        runs,
        disarmed_median_secs,
        profiled_median_secs,
        armed_median_secs,
        disarmed_span_site_ns,
        spans_per_query,
        overhead_disarmed_pct: spans_per_query * disarmed_span_site_ns
            / (disarmed_median_secs * 1e9)
            * 100.0,
        overhead_profiled_pct: pct(profiled_median_secs),
        overhead_armed_pct: pct(armed_median_secs),
    }
}

impl TracingOverhead {
    /// Serialize as a JSON object (no trailing newline), indented to nest
    /// under a report key.
    pub fn to_json_object(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        let _ = writeln!(out, "    \"runs_per_mode\": {},", self.runs);
        let _ = writeln!(
            out,
            "    \"disarmed_median_secs\": {},",
            json_f64(self.disarmed_median_secs)
        );
        let _ = writeln!(
            out,
            "    \"profiled_median_secs\": {},",
            json_f64(self.profiled_median_secs)
        );
        let _ = writeln!(
            out,
            "    \"armed_median_secs\": {},",
            json_f64(self.armed_median_secs)
        );
        let _ = writeln!(
            out,
            "    \"disarmed_span_site_ns\": {},",
            json_f64(self.disarmed_span_site_ns)
        );
        let _ = writeln!(
            out,
            "    \"spans_per_query\": {},",
            json_f64(self.spans_per_query)
        );
        let _ = writeln!(
            out,
            "    \"overhead_disarmed_pct\": {},",
            json_f64(self.overhead_disarmed_pct)
        );
        let _ = writeln!(
            out,
            "    \"overhead_profiled_pct\": {},",
            json_f64(self.overhead_profiled_pct)
        );
        let _ = writeln!(
            out,
            "    \"overhead_armed_pct\": {}",
            json_f64(self.overhead_armed_pct)
        );
        out.push_str("  }");
        out
    }
}

/// Run every workload at the given scale.
pub fn run_report(scale: Scale) -> BenchReport {
    BenchReport {
        threads: rayon::current_num_threads(),
        workloads: vec![
            schema_generator_workload(scale),
            db_generator_workload(scale),
            chain_workload(RetrievalStrategy::NaiveQ, scale),
            chain_workload(RetrievalStrategy::RoundRobin, scale),
            postings_intersection_workload(scale),
            tuple_scan_workload(scale),
            engine_workload(scale),
            wal_append_workload(FsyncPolicy::Never, scale),
            wal_append_workload(FsyncPolicy::Batch(64), scale),
            wal_append_workload(FsyncPolicy::Always, scale),
            recovery_replay_workload(scale),
        ],
        tracing: Some(tracing_overhead(scale)),
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_owned()
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_owned(),
    }
}

impl BenchReport {
    /// Serialize as pretty-printed JSON (hand-rolled; the workspace carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"report\": \"{REPORT_LABEL}\",");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        if let Some(tracing) = &self.tracing {
            let _ = writeln!(out, "  \"tracing_overhead\": {},", tracing.to_json_object());
        }
        let _ = writeln!(out, "  \"workloads\": {}", self.workloads_json_array());
        let _ = writeln!(out, "}}");
        out
    }

    /// The `"workloads"` array alone (pretty-printed at a 2-space base
    /// indent, no trailing newline). Shared between the full report and the
    /// PR 8 serving snapshot, which embeds the same array so the CI
    /// bench-smoke gate reads `fig8_database_generator` throughput from
    /// either file.
    pub fn workloads_json_array(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[");
        for (i, w) in self.workloads.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
            let _ = writeln!(out, "      \"runs\": {},", w.runs);
            let _ = writeln!(
                out,
                "      \"median_wall_secs\": {},",
                json_f64(w.median_secs)
            );
            let _ = writeln!(
                out,
                "      \"tuples_per_sec\": {},",
                json_opt(w.tuples_per_sec)
            );
            let _ = writeln!(
                out,
                "      \"schema_cache_hit_rate\": {},",
                json_opt(w.schema_hit_rate)
            );
            let _ = writeln!(
                out,
                "      \"token_cache_hit_rate\": {}",
                json_opt(w.token_hit_rate)
            );
            let comma = if i + 1 < self.workloads.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_and_even_counts() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn quick_report_covers_every_workload_and_caches_pay_off() {
        let report = run_report(Scale::Quick);
        assert!(report.threads >= 1);
        let names: Vec<&str> = report.workloads.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "fig7_schema_generator",
                "fig8_database_generator",
                "fig9_chain_naiveq",
                "fig9_chain_round_robin",
                "postings_intersection",
                "tuple_scan",
                "multi_token_engine",
                "wal_append_fsync_never",
                "wal_append_fsync_batch",
                "wal_append_fsync_always",
                "recovery_replay",
            ]
        );
        for w in &report.workloads {
            assert!(w.runs > 0, "{}", w.name);
            assert!(w.median_secs >= 0.0, "{}", w.name);
        }
        let replay = report.workloads.last().unwrap();
        assert!(
            replay.tuples_per_sec.unwrap() > 0.0,
            "recovery replays tuples"
        );
        let engine = &report.workloads[6];
        assert_eq!(engine.name, "multi_token_engine");
        assert!(
            engine.schema_hit_rate.unwrap() > 0.9,
            "repeated queries must hit the schema cache: {:?}",
            engine.schema_hit_rate
        );
        assert!(engine.token_hit_rate.unwrap() > 0.9);
        let tracing = report.tracing.expect("tracing overhead measured");
        assert!(tracing.runs > 0);
        assert!(tracing.disarmed_median_secs > 0.0);
        assert!(tracing.spans_per_query > 1.0, "traced runs record spans");
        assert!(
            tracing.disarmed_span_site_ns < 100.0,
            "a disarmed span site must stay in single-digit nanoseconds, got {}",
            tracing.disarmed_span_site_ns
        );
        assert!(
            tracing.overhead_disarmed_pct < 3.0,
            "disarmed overhead bound {}% breaches the 3% target",
            tracing.overhead_disarmed_pct
        );
    }

    #[test]
    fn report_serializes_to_well_formed_json() {
        let report = BenchReport {
            threads: 4,
            workloads: vec![
                WorkloadStat {
                    name: "a",
                    runs: 2,
                    median_secs: 0.5,
                    tuples_per_sec: Some(10.0),
                    schema_hit_rate: None,
                    token_hit_rate: None,
                },
                WorkloadStat {
                    name: "b",
                    runs: 1,
                    median_secs: 0.25,
                    tuples_per_sec: None,
                    schema_hit_rate: Some(0.96),
                    token_hit_rate: Some(0.97),
                },
            ],
            tracing: Some(TracingOverhead {
                runs: 9,
                disarmed_median_secs: 0.001,
                profiled_median_secs: 0.00101,
                armed_median_secs: 0.00108,
                disarmed_span_site_ns: 1.5,
                spans_per_query: 40.0,
                overhead_disarmed_pct: 0.006,
                overhead_profiled_pct: 1.0,
                overhead_armed_pct: 8.0,
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"tracing_overhead\": {"));
        assert!(json.contains("\"overhead_armed_pct\": 8.000000000"));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"tuples_per_sec\": null"));
        assert!(json.contains("\"schema_cache_hit_rate\": 0.960000000"));
        // Crude balance check: every brace and bracket closes.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }
}
