//! PR-trajectory benchmark snapshot: a compact JSON report of the answer
//! pipeline's wall-clock medians, throughput, cache behavior, and thread
//! count, committed as `BENCH_PR1.json` so successive PRs can track the
//! trajectory of the same workloads over time.
//!
//! The workloads mirror the paper's evaluation (§6): a Figure-7-style
//! schema-generator sweep, a Figure-8-style database-generator run, a
//! Figure-9 NaïveQ vs Round-Robin pair, plus an end-to-end multi-token
//! [`PrecisEngine`] workload that exercises the parallel index-lookup path
//! and the answer caches.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p precis-bench --bin bench_report -- BENCH_PR1.json
//! ```

use crate::workloads::{
    bench_movies_graph, connected_relation_sets, full_result_schema, random_seed_tids,
    random_seed_tids_in_range, restrict_graph, run_db_generation,
};
use precis_core::{
    generate_result_schema, AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine,
    PrecisQuery, RetrievalStrategy,
};
use precis_datagen::{chain_db_fanout, movies_graph, MoviesConfig, MoviesGenerator};
use precis_storage::RelationId;
use std::fmt::Write as _;
use std::time::Instant;

/// Scale knob: `quick` keeps every workload under a second for tests;
/// `full` is the committed-report configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

/// One benchmarked workload.
#[derive(Debug, Clone)]
pub struct WorkloadStat {
    pub name: &'static str,
    /// Timed runs contributing samples.
    pub runs: usize,
    /// Median per-run wall time, seconds.
    pub median_secs: f64,
    /// Tuples retrieved across all runs divided by total wall time;
    /// `None` for workloads that do not retrieve tuples (schema generation).
    pub tuples_per_sec: Option<f64>,
    /// Final schema-cache hit rate, for engine workloads.
    pub schema_hit_rate: Option<f64>,
    /// Final token-cache hit rate, for engine workloads.
    pub token_hit_rate: Option<f64>,
}

/// The full report: thread count plus one entry per workload.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads the parallel paths fan out over
    /// ([`rayon::current_num_threads`]).
    pub threads: usize,
    pub workloads: Vec<WorkloadStat>,
}

/// Median of the samples (mean of the middle pair for even counts).
pub fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn stat_from_samples(
    name: &'static str,
    mut samples: Vec<f64>,
    tuples: Option<usize>,
) -> WorkloadStat {
    let total: f64 = samples.iter().sum();
    let tuples_per_sec = tuples.map(|t| if total > 0.0 { t as f64 / total } else { 0.0 });
    WorkloadStat {
        name,
        runs: samples.len(),
        median_secs: median(&mut samples),
        tuples_per_sec,
        schema_hit_rate: None,
        token_hit_rate: None,
    }
}

/// Figure-7-style workload: schema generation over every origin of the
/// movies graph under a top-projections degree constraint.
fn schema_generator_workload(scale: Scale) -> WorkloadStat {
    let graph = bench_movies_graph();
    let repeats = match scale {
        Scale::Quick => 3,
        Scale::Full => 50,
    };
    let origins: Vec<RelationId> = graph.schema().relations().map(|(id, _)| id).collect();
    let constraint = DegreeConstraint::TopProjections(8);
    let mut samples = Vec::new();
    for _ in 0..repeats {
        for &r0 in &origins {
            let t0 = Instant::now();
            let rs = generate_result_schema(&graph, &[r0], &constraint);
            samples.push(t0.elapsed().as_secs_f64());
            assert!(rs.relation_count() > 0);
        }
    }
    stat_from_samples("fig7_schema_generator", samples, None)
}

/// Figure-8-style workload: database generation over connected 4-relation
/// sets of a synthetic movies database, NaïveQ, `c_R = 50`.
fn db_generator_workload(scale: Scale) -> WorkloadStat {
    let (movies, max_sets, seed_sets) = match scale {
        Scale::Quick => (300, 2, 1),
        Scale::Full => (5_000, 10, 5),
    };
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 12).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 60).max(1),
        plays: movies * 2,
        seed: 0xF168,
        ..MoviesConfig::default()
    })
    .generate();
    let graph = bench_movies_graph();
    let c_r = 50;
    let mut samples = Vec::new();
    let mut tuples = 0usize;
    for (i, set) in connected_relation_sets(&graph, 4)
        .into_iter()
        .take(max_sets)
        .enumerate()
    {
        let g = restrict_graph(&graph, &set);
        for &origin in &set {
            let schema = full_result_schema(&g, origin);
            for s in 0..seed_sets {
                let seeds = random_seed_tids(&db, origin, c_r, (i * 31 + s) as u64);
                let t0 = Instant::now();
                let p = run_db_generation(
                    &db,
                    &g,
                    &schema,
                    origin,
                    &seeds,
                    c_r,
                    RetrievalStrategy::NaiveQ,
                    true,
                );
                samples.push(t0.elapsed().as_secs_f64());
                tuples += p.total_tuples();
            }
        }
    }
    stat_from_samples("fig8_database_generator", samples, Some(tuples))
}

/// Figure-9-style workload: one strategy on a chain database with fan-out,
/// fixed `c_R`, exact control of `n_R`.
fn chain_workload(strategy: RetrievalStrategy, scale: Scale) -> WorkloadStat {
    let (rows, repeats) = match scale {
        Scale::Quick => (300, 3),
        Scale::Full => (2_000, 50),
    };
    let (n, c_r, fanout) = (6, 50, 4);
    let (db, graph) = chain_db_fanout(n, rows, fanout, 9 ^ n as u64);
    let r0 = graph.schema().relation_id("R0").expect("chain root");
    let schema = full_result_schema(&graph, r0);
    let seed_range = (rows / fanout).max(1);
    // Untimed warmup faults in caches and allocator arenas.
    let warmup = random_seed_tids_in_range(&db, r0, seed_range, c_r, 9);
    let _ = run_db_generation(&db, &graph, &schema, r0, &warmup, c_r, strategy, true);
    let mut samples = Vec::new();
    let mut tuples = 0usize;
    for rep in 0..repeats {
        let seeds = random_seed_tids_in_range(&db, r0, seed_range, c_r, 9 + rep as u64);
        let t0 = Instant::now();
        let p = run_db_generation(&db, &graph, &schema, r0, &seeds, c_r, strategy, true);
        samples.push(t0.elapsed().as_secs_f64());
        tuples += p.total_tuples();
    }
    let name = match strategy {
        RetrievalStrategy::NaiveQ => "fig9_chain_naiveq",
        RetrievalStrategy::RoundRobin => "fig9_chain_round_robin",
        RetrievalStrategy::TopWeight => "fig9_chain_top_weight",
    };
    stat_from_samples(name, samples, Some(tuples))
}

/// End-to-end engine workload: multi-token précis queries answered
/// repeatedly, so index lookups fan out across threads on cold tokens and
/// the schema/token caches absorb the repeats.
fn engine_workload(scale: Scale) -> WorkloadStat {
    let (movies, rounds) = match scale {
        Scale::Quick => (300, 12),
        Scale::Full => (2_000, 25),
    };
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 12).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 60).max(1),
        plays: movies * 2,
        seed: 0xE26,
        ..MoviesConfig::default()
    })
    .generate();
    let engine = PrecisEngine::new(db, movies_graph()).expect("engine builds");
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.5),
        CardinalityConstraint::MaxTuplesPerRelation(20),
    );
    let queries = [
        PrecisQuery::new(["comedy", "drama", "thriller"]),
        PrecisQuery::new(["romance", "action", "horror"]),
        PrecisQuery::new(["sci-fi", "documentary", "comedy"]),
    ];
    let mut samples = Vec::new();
    let mut tuples = 0usize;
    for _ in 0..rounds {
        for q in &queries {
            let t0 = Instant::now();
            let a = engine.answer(q, &spec).expect("query answers");
            samples.push(t0.elapsed().as_secs_f64());
            tuples += a.precis.total_tuples();
        }
    }
    let stats = engine.cache_stats();
    let mut stat = stat_from_samples("multi_token_engine", samples, Some(tuples));
    stat.schema_hit_rate = Some(stats.schema_hit_rate());
    stat.token_hit_rate = Some(stats.token_hit_rate());
    stat
}

/// Run every workload at the given scale.
pub fn run_report(scale: Scale) -> BenchReport {
    BenchReport {
        threads: rayon::current_num_threads(),
        workloads: vec![
            schema_generator_workload(scale),
            db_generator_workload(scale),
            chain_workload(RetrievalStrategy::NaiveQ, scale),
            chain_workload(RetrievalStrategy::RoundRobin, scale),
            engine_workload(scale),
        ],
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_owned()
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_owned(),
    }
}

impl BenchReport {
    /// Serialize as pretty-printed JSON (hand-rolled; the workspace carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"report\": \"BENCH_PR1\",");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", w.name);
            let _ = writeln!(out, "      \"runs\": {},", w.runs);
            let _ = writeln!(
                out,
                "      \"median_wall_secs\": {},",
                json_f64(w.median_secs)
            );
            let _ = writeln!(
                out,
                "      \"tuples_per_sec\": {},",
                json_opt(w.tuples_per_sec)
            );
            let _ = writeln!(
                out,
                "      \"schema_cache_hit_rate\": {},",
                json_opt(w.schema_hit_rate)
            );
            let _ = writeln!(
                out,
                "      \"token_cache_hit_rate\": {}",
                json_opt(w.token_hit_rate)
            );
            let comma = if i + 1 < self.workloads.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_and_even_counts() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn quick_report_covers_every_workload_and_caches_pay_off() {
        let report = run_report(Scale::Quick);
        assert!(report.threads >= 1);
        let names: Vec<&str> = report.workloads.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "fig7_schema_generator",
                "fig8_database_generator",
                "fig9_chain_naiveq",
                "fig9_chain_round_robin",
                "multi_token_engine",
            ]
        );
        for w in &report.workloads {
            assert!(w.runs > 0, "{}", w.name);
            assert!(w.median_secs >= 0.0, "{}", w.name);
        }
        let engine = report.workloads.last().unwrap();
        assert!(
            engine.schema_hit_rate.unwrap() > 0.9,
            "repeated queries must hit the schema cache: {:?}",
            engine.schema_hit_rate
        );
        assert!(engine.token_hit_rate.unwrap() > 0.9);
    }

    #[test]
    fn report_serializes_to_well_formed_json() {
        let report = BenchReport {
            threads: 4,
            workloads: vec![
                WorkloadStat {
                    name: "a",
                    runs: 2,
                    median_secs: 0.5,
                    tuples_per_sec: Some(10.0),
                    schema_hit_rate: None,
                    token_hit_rate: None,
                },
                WorkloadStat {
                    name: "b",
                    runs: 1,
                    median_secs: 0.25,
                    tuples_per_sec: None,
                    schema_hit_rate: Some(0.96),
                    token_hit_rate: Some(0.97),
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"tuples_per_sec\": null"));
        assert!(json.contains("\"schema_cache_hit_rate\": 0.960000000"));
        // Crude balance check: every brace and bracket closes.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }
}
