//! Regenerate every table/figure of the paper's evaluation as text tables.
//!
//! ```text
//! cargo run --release -p precis-bench --bin experiments -- all
//! cargo run --release -p precis-bench --bin experiments -- fig7
//! ```
//!
//! Subcommands: `fig7`, `fig7-large`, `fig8`, `fig9`, `cost-model`,
//! `ablation-pruning`, `ablation-indegree`, `baseline`, `all`.

use precis_bench::figures::{
    ablation_fast_schema_gen, ablation_in_degree, ablation_pruning, cost_model_validation, fig7,
    fig7_large_graph, fig7_movies_graph, fig8, fig9,
};
use precis_bench::workloads::bench_movies_db;
use precis_core::RetrievalStrategy;
use std::time::Instant;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let t0 = Instant::now();
    match arg.as_str() {
        "fig7" => run_fig7(),
        "fig7-large" => run_fig7_large(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "cost-model" => run_cost_model(),
        "ablation-pruning" => run_ablation_pruning(),
        "ablation-fastgen" => run_ablation_fastgen(),
        "ablation-indegree" => run_ablation_indegree(),
        "baseline" => run_baseline(),
        "all" => {
            run_fig7();
            run_fig7_large();
            run_fig8();
            run_fig9();
            run_cost_model();
            run_ablation_pruning();
            run_ablation_fastgen();
            run_ablation_indegree();
            run_baseline();
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!("expected: fig7 | fig7-large | fig8 | fig9 | cost-model | ablation-pruning | ablation-fastgen | ablation-indegree | baseline | all");
            std::process::exit(2);
        }
    }
    eprintln!("\n(total wall time: {:.1}s)", t0.elapsed().as_secs_f64());
}

fn run_fig7() {
    println!("\n## Figure 7 — Result Schema Generator time vs degree d");
    println!("## movies schema graph, 20 random weight sets x 7 origin relations per point");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>5}",
        "d", "mean (µs)", "accepted", "runs"
    );
    for p in fig7(&fig7_movies_graph(), &[1, 2, 4, 6, 8, 10, 12, 14], 20, 42) {
        println!(
            "{:>4}  {:>12.2}  {:>10.1}  {:>5}",
            p.d,
            p.mean_secs * 1e6,
            p.mean_accepted,
            p.runs
        );
    }
}

fn run_fig7_large() {
    println!("\n## Figure 7 (extended) — 15-relation tree schema, 89 projection edges");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>5}",
        "d", "mean (µs)", "accepted", "runs"
    );
    for p in fig7(&fig7_large_graph(), &[5, 10, 20, 30, 40, 50, 60], 20, 43) {
        println!(
            "{:>4}  {:>12.2}  {:>10.1}  {:>5}",
            p.d,
            p.mean_secs * 1e6,
            p.mean_accepted,
            p.runs
        );
    }
}

fn run_fig8() {
    println!("\n## Figure 8 — Result Database Generator time vs c_R (n_R = 4, NaiveQ)");
    println!("## synthetic movies db, 10 connected 4-relation sets x 4 origins x 5 seed sets");
    let db = bench_movies_db(0xF168);
    println!(
        "{:>4}  {:>12}  {:>10}  {:>5}",
        "c_R", "mean (µs)", "tuples", "runs"
    );
    for p in fig8(&db, &[10, 20, 30, 40, 50, 60, 70, 80, 90], 10, 5, 8) {
        println!(
            "{:>4}  {:>12.2}  {:>10.1}  {:>5}",
            p.c_r,
            p.mean_secs * 1e6,
            p.mean_tuples,
            p.runs
        );
    }
}

fn run_fig9() {
    println!("\n## Figure 9 — NaiveQ vs Round-Robin time vs n_R (c_R = 50)");
    println!("## chain databases, 2000 rows per relation, fan-out 8, 50 repeats");
    println!(
        "{:>4}  {:>14}  {:>14}  {:>8}",
        "n_R", "naive (µs)", "rrobin (µs)", "rr/naive"
    );
    let pts = fig9(&[1, 2, 3, 4, 5, 6, 7, 8], 50, 2_000, 8, 50, 9);
    for pair in pts.chunks(2) {
        let naive = pair
            .iter()
            .find(|p| p.strategy == RetrievalStrategy::NaiveQ)
            .expect("naive point");
        let rr = pair
            .iter()
            .find(|p| p.strategy == RetrievalStrategy::RoundRobin)
            .expect("round robin point");
        println!(
            "{:>4}  {:>14.2}  {:>14.2}  {:>8.2}",
            naive.n_r,
            naive.mean_secs * 1e6,
            rr.mean_secs * 1e6,
            rr.mean_secs / naive.mean_secs
        );
    }
}

fn run_cost_model() {
    println!(
        "\n## Formula 2 — cost model validation: Cost(D') = c_R * n_R * (IndexTime + TupleTime)"
    );
    let (model, pts) = cost_model_validation(&[10, 30, 50, 70, 90], &[2, 4, 6, 8], 2_000, 20, 11);
    println!(
        "## calibrated IndexTime = {:.1} ns, TupleTime = {:.1} ns",
        model.index_time * 1e9,
        model.tuple_time * 1e9
    );
    println!(
        "{:>4}  {:>4}  {:>14}  {:>14}  {:>9}",
        "c_R", "n_R", "measured (µs)", "predicted (µs)", "meas/pred"
    );
    for p in pts {
        println!(
            "{:>4}  {:>4}  {:>14.2}  {:>14.2}  {:>9.2}",
            p.c_r,
            p.n_r,
            p.measured_secs * 1e6,
            p.predicted_secs * 1e6,
            p.ratio()
        );
    }
}

fn run_ablation_pruning() {
    println!("\n## Ablation — best-first expansion pruning (identical results, less queue work)");
    println!(
        "{:>4}  {:>10}  {:>12}  {:>10}  {:>8}",
        "w0", "pushed", "pushed(off)", "accepted", "saving"
    );
    for p in ablation_pruning(&fig7_movies_graph(), &[0.9, 0.7, 0.5, 0.3, 0.1], 20, 13) {
        println!(
            "{:>4}  {:>10}  {:>12}  {:>10}  {:>7.2}x",
            p.w0,
            p.with_pruning.pushed,
            p.without_pruning.pushed,
            p.with_pruning.accepted,
            p.speedup_pushed
        );
    }
}

fn run_ablation_fastgen() {
    println!("\n## Optimization — Figure 3 path enumeration vs Dijkstra variant");
    println!("## layered all-to-all graph (5 layers x 3 relations, 3^4 = 81 root-to-leaf paths)");
    println!(
        "{:>4}  {:>12}  {:>12}  {:>8}  {:>8}",
        "w0", "fig3 (µs)", "fast (µs)", "speedup", "attrs"
    );
    for p in ablation_fast_schema_gen(&[0.9, 0.7, 0.5, 0.3, 0.2, 0.1], 10, 5, 21) {
        println!(
            "{:>4}  {:>12.2}  {:>12.2}  {:>7.2}x  {:>8}",
            p.w0,
            p.fig3_secs * 1e6,
            p.fast_secs * 1e6,
            p.fig3_secs / p.fast_secs,
            p.visible_attrs
        );
    }
}

fn run_ablation_indegree() {
    println!("\n## Ablation — in-degree join postponement (tuples reached, two-origin query)");
    let db = bench_movies_db(0xD0_D0);
    println!(
        "{:>6}  {:>12}  {:>14}",
        "seeds", "postponed", "no postponing"
    );
    for p in ablation_in_degree(&db, &[5, 10, 20, 40], 17) {
        println!(
            "{:>6}  {:>12.0}  {:>14.0}",
            p.seeds, p.tuples_with, p.tuples_without
        );
    }
}

fn run_baseline() {
    use precis_baseline::KeywordSearch;
    use precis_core::{
        AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery,
    };
    use precis_datagen::movies_graph;
    use precis_index::InvertedIndex;

    println!("\n## Baseline — precis vs DISCOVER-style keyword search (same substrate)");
    let db = bench_movies_db(0xBA5E);
    let graph = movies_graph();
    let index = InvertedIndex::build(&db);

    let token = "comedy";
    let t0 = Instant::now();
    let ks = KeywordSearch::new(&db, &graph, &index);
    let answers = ks.search(&[token], 4, 200);
    let baseline_secs = t0.elapsed().as_secs_f64();
    let baseline_rows: usize = answers.iter().map(|a| a.rows.len()).sum();

    let engine = PrecisEngine::with_index(db, graph, index);
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.5),
        CardinalityConstraint::MaxTotalTuples(200),
    );
    let t1 = Instant::now();
    let answer = engine
        .answer(&PrecisQuery::new([token]), &spec)
        .expect("query answers");
    let precis_secs = t1.elapsed().as_secs_f64();

    println!(
        "{:<22} {:>12} {:>10} {:>12}",
        "system", "time (ms)", "rows", "relations"
    );
    println!(
        "{:<22} {:>12.2} {:>10} {:>12}",
        "keyword search",
        baseline_secs * 1e3,
        baseline_rows,
        answers.len()
    );
    println!(
        "{:<22} {:>12.2} {:>10} {:>12}",
        "precis (<=200 tuples)",
        precis_secs * 1e3,
        answer.precis.total_tuples(),
        answer.precis.database.schema().relation_count()
    );
}
