//! Drive an in-process `precis-server` over loopback and write the serving
//! benchmark snapshot.
//!
//! ```text
//! cargo run --release -p precis-bench --bin load_gen -- BENCH_PR2.json
//! cargo run --release -p precis-bench --bin load_gen -- --quick out.json
//! cargo run --release -p precis-bench --bin load_gen -- --clients 32 --workers 4
//! cargo run --release -p precis-bench --bin load_gen -- --pr5 BENCH_PR5.json
//! ```
//!
//! `--pr5` labels the report `BENCH_PR5` and prepends the tracing-overhead
//! measurement (armed vs disarmed medians over the PR 1 pipeline workload),
//! so the queue-wait/service-time split and the observability cost land in
//! one snapshot. With no path, the JSON is printed to stdout only.

use precis_bench::bench_report::{tracing_overhead, Scale};
use precis_bench::load_report::{run_load, LoadConfig};

fn main() {
    let mut config = LoadConfig::default();
    let mut path: Option<String> = None;
    let mut pr5 = false;
    let mut quick = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let numeric = |i: &mut usize, name: &str| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a number");
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--quick" => {
                config = LoadConfig::quick();
                quick = true;
            }
            "--pr5" => pr5 = true,
            "--movies" => config.movies = numeric(&mut i, "--movies"),
            "--workers" => config.workers = numeric(&mut i, "--workers"),
            "--queue" => config.queue_capacity = numeric(&mut i, "--queue"),
            "--clients" => config.clients = numeric(&mut i, "--clients"),
            "--requests" => config.requests_per_client = numeric(&mut i, "--requests"),
            "--deadline-ms" => config.deadline_ms = numeric(&mut i, "--deadline-ms") as u64,
            other if other.starts_with('-') => {
                eprintln!(
                    "unknown flag {other:?} (expected --quick | --pr5 | --movies | --workers | \
                     --queue | --clients | --requests | --deadline-ms)"
                );
                std::process::exit(2);
            }
            other => path = Some(other.to_owned()),
        }
        i += 1;
    }

    let tracing = pr5.then(|| {
        eprintln!("measuring tracing overhead...");
        tracing_overhead(if quick { Scale::Quick } else { Scale::Full })
    });
    let report = run_load(config);
    let mut json = if pr5 {
        report.to_json_labeled("BENCH_PR5")
    } else {
        report.to_json()
    };
    if let Some(tracing) = &tracing {
        json = json.replacen(
            "\"report\": \"BENCH_PR5\",",
            &format!(
                "\"report\": \"BENCH_PR5\",\n  \"tracing_overhead\": {},",
                tracing.to_json_object()
            ),
            1,
        );
    }
    print!("{json}");
    if let Some(path) = path {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    eprintln!(
        "({} ok / {} rejected / {} deadline-exceeded in {:.1}s, {:.0} req/s)",
        report.ok,
        report.rejected,
        report.deadline_exceeded,
        report.wall_secs,
        report.throughput_rps
    );
}
