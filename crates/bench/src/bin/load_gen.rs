//! Drive an in-process `precis-server` over loopback and write the serving
//! benchmark snapshot.
//!
//! ```text
//! cargo run --release -p precis-bench --bin load_gen -- BENCH_PR2.json
//! cargo run --release -p precis-bench --bin load_gen -- --quick out.json
//! cargo run --release -p precis-bench --bin load_gen -- --clients 32 --workers 4
//! cargo run --release -p precis-bench --bin load_gen -- --pr5 BENCH_PR5.json
//! cargo run --release -p precis-bench --bin load_gen -- --pr8 BENCH_PR8.json
//! cargo run --release -p precis-bench --bin load_gen -- --pr10 BENCH_PR10.json
//! ```
//!
//! `--pr5` labels the report `BENCH_PR5` and prepends the tracing-overhead
//! measurement (armed vs disarmed medians over the PR 1 pipeline workload),
//! so the queue-wait/service-time split and the observability cost land in
//! one snapshot. `--pr8` labels the report `BENCH_PR8`, switches the default
//! shape to the duplicate-heavy synchronized burst that exercises the
//! cost-aware scheduler (coalesce hit rate, shed false-positive rate,
//! Formula-2 prediction accuracy), and appends the pipeline `workloads`
//! array so the CI bench-smoke gate can read fig8 throughput from the same
//! file. `--pr10` measures always-on telemetry overhead: the PR 8 burst
//! shape served by two *co-resident* servers (telemetry off / telemetry
//! on) over one shared engine, half the client threads pinned to each
//! server per round (halves swap every round) so machine noise hits both
//! modes at the same instants and cancels out of the paired per-round
//! deltas. `overhead.p50_delta_pct` is
//! the median over rounds of the per-round paired p50 delta, plus a
//! re-measure of the disarmed span-site cost; the committed
//! `BENCH_PR10.json` gates that delta under 2%. With no path, the JSON is
//! printed to stdout only.

use precis_bench::bench_report::{run_report, tracing_overhead, Scale};
use precis_bench::load_report::{run_coresident_ab, run_load, CoresidentAb, LoadConfig};

/// Cost of one disarmed span site, nanoseconds — re-measured so the PR 10
/// snapshot proves always-on sampling did not quietly arm the fast path.
fn disarmed_span_site_ns() -> f64 {
    assert!(
        !precis_obs::armed(),
        "tracer must be disarmed for the span-site measure"
    );
    let iters: u32 = 4_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        let _s = precis_obs::span("bench.disarmed_site");
    }
    t0.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let mut config = LoadConfig::default();
    let mut path: Option<String> = None;
    let mut pr5 = false;
    let mut pr8 = false;
    let mut pr10 = false;
    let mut quick = false;
    let mut rounds: Option<usize> = None;
    let mut requests_set = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let numeric = |i: &mut usize, name: &str| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a number");
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--quick" => {
                config = LoadConfig::quick();
                quick = true;
            }
            "--pr5" => pr5 = true,
            "--pr8" | "--pr10" => {
                if args[i].as_str() == "--pr10" {
                    pr10 = true;
                } else {
                    pr8 = true;
                }
                // Adopt the burst shape, but let size knobs already parsed
                // (or still to come) override it — flag order is free.
                let base = LoadConfig::pr8();
                config.duplicate_pct = base.duplicate_pct;
                if !quick {
                    config.queue_capacity = base.queue_capacity;
                    config.clients = base.clients;
                }
            }
            "--movies" => config.movies = numeric(&mut i, "--movies"),
            "--workers" => config.workers = numeric(&mut i, "--workers"),
            "--queue" => config.queue_capacity = numeric(&mut i, "--queue"),
            "--clients" => config.clients = numeric(&mut i, "--clients"),
            "--requests" => {
                config.requests_per_client = numeric(&mut i, "--requests");
                requests_set = true;
            }
            "--deadline-ms" => config.deadline_ms = numeric(&mut i, "--deadline-ms") as u64,
            "--duplicates" => config.duplicate_pct = numeric(&mut i, "--duplicates").min(100) as u8,
            "--rounds" => rounds = Some(numeric(&mut i, "--rounds").max(1)),
            other if other.starts_with('-') => {
                eprintln!(
                    "unknown flag {other:?} (expected --quick | --pr5 | --pr8 | --pr10 | \
                     --movies | --workers | --queue | --clients | --requests | --deadline-ms | \
                     --duplicates | --rounds)"
                );
                std::process::exit(2);
            }
            other => path = Some(other.to_owned()),
        }
        i += 1;
    }
    if (pr5 as u8) + (pr8 as u8) + (pr10 as u8) > 1 {
        eprintln!("--pr5, --pr8, and --pr10 are mutually exclusive");
        std::process::exit(2);
    }

    let scale = if quick { Scale::Quick } else { Scale::Full };

    if pr10 {
        let rounds = rounds.unwrap_or(if quick { 3 } else { 48 });
        // Many short rounds beat few long ones: the gate statistic is a
        // median over per-round paired deltas, and its resolution scales
        // with the number of rounds, not the requests inside one.
        if !requests_set && !quick {
            config.requests_per_client = 100;
        }
        eprintln!("pr10: measuring always-on telemetry overhead ({rounds} co-resident rounds)...");
        let CoresidentAb {
            off,
            on,
            p50_delta_pct_median: p50_delta_pct,
        } = run_coresident_ab(&config, rounds);
        let site_ns = disarmed_span_site_ns();
        let off_json = off.to_json_labeled("pr10_telemetry_off");
        let on_json = on.to_json_labeled("pr10_always_on");
        let json = format!(
            "{{\n  \"report\": \"BENCH_PR10\",\n  \"overhead\": {{\"p50_off_secs\": {:.6}, \
             \"p50_on_secs\": {:.6}, \"p50_delta_pct\": {:.3}, \"throughput_off_rps\": {:.3}, \
             \"throughput_on_rps\": {:.3}, \"disarmed_span_site_ns\": {:.2}, \"rounds\": {}}},\n  \
             \"telemetry_off\": {},\n  \"always_on\": {}}}\n",
            off.p50_secs,
            on.p50_secs,
            p50_delta_pct,
            off.throughput_rps,
            on.throughput_rps,
            site_ns,
            rounds,
            off_json.trim_end(),
            on_json.trim_end()
        );
        print!("{json}");
        if let Some(path) = path {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        eprintln!(
            "(pooled p50 off {:.4}s / on {:.4}s, paired-median delta {:+.2}%; \
             {:.0} vs {:.0} req/s; disarmed span site {:.1} ns)",
            off.p50_secs,
            on.p50_secs,
            p50_delta_pct,
            off.throughput_rps,
            on.throughput_rps,
            site_ns
        );
        return;
    }
    let tracing = pr5.then(|| {
        eprintln!("measuring tracing overhead...");
        tracing_overhead(scale)
    });
    let report = run_load(config);
    let mut json = if pr5 {
        report.to_json_labeled("BENCH_PR5")
    } else if pr8 {
        report.to_json_labeled("BENCH_PR8")
    } else {
        report.to_json()
    };
    if let Some(tracing) = &tracing {
        json = json.replacen(
            "\"report\": \"BENCH_PR5\",",
            &format!(
                "\"report\": \"BENCH_PR5\",\n  \"tracing_overhead\": {},",
                tracing.to_json_object()
            ),
            1,
        );
    }
    if pr8 {
        eprintln!("running pipeline workloads for the fig8 gate...");
        let workloads = run_report(scale).workloads_json_array();
        let stripped = json
            .strip_suffix("}\n")
            .and_then(|s| s.strip_suffix('\n'))
            .expect("load report JSON shape");
        json = format!("{stripped},\n  \"workloads\": {workloads}\n}}\n");
    }
    print!("{json}");
    if let Some(path) = path {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    eprintln!(
        "({} ok / {} rejected / {} deadline-exceeded in {:.1}s, {:.0} req/s, \
         {} coalesced, {} shed, p50 {:.4}s)",
        report.ok,
        report.rejected,
        report.deadline_exceeded,
        report.wall_secs,
        report.throughput_rps,
        report.coalesced_total,
        report.shed_total,
        report.p50_secs
    );
}
