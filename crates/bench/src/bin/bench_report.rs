//! Regenerate the PR-trajectory benchmark snapshot.
//!
//! ```text
//! cargo run --release -p precis-bench --bin bench_report -- BENCH_PR7.json
//! cargo run --release -p precis-bench --bin bench_report -- --quick out.json
//! ```
//!
//! With no path, the JSON is printed to stdout only.

use precis_bench::bench_report::{run_report, Scale};
use std::time::Instant;

fn main() {
    let mut scale = Scale::Full;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?} (expected --quick | --full)");
                std::process::exit(2);
            }
            other => path = Some(other.to_owned()),
        }
    }
    let t0 = Instant::now();
    let report = run_report(scale);
    let json = report.to_json();
    print!("{json}");
    if let Some(path) = path {
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    eprintln!(
        "({} threads, total wall time {:.1}s)",
        report.threads,
        t0.elapsed().as_secs_f64()
    );
}
