//! Précis query answering vs. DISCOVER-style keyword search over the same
//! database, index, and schema graph — the ablation for the Related Work
//! contrast (§2).

use criterion::{criterion_group, criterion_main, Criterion};
use precis_baseline::KeywordSearch;
use precis_bench::workloads::bench_movies_db;
use precis_core::{AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery};
use precis_datagen::movies_graph;
use precis_index::InvertedIndex;
use std::hint::black_box;

fn bench_compare(c: &mut Criterion) {
    let db = bench_movies_db(0xBA5E);
    let graph = movies_graph();
    let index = InvertedIndex::build(&db);

    {
        let ks_db = bench_movies_db(0xBA5E);
        let ks_index = InvertedIndex::build(&ks_db);
        let ks_graph = movies_graph();
        c.bench_function("baseline/keyword_search_comedy", |b| {
            let ks = KeywordSearch::new(&ks_db, &ks_graph, &ks_index);
            b.iter(|| ks.search(black_box(&["comedy"]), 4, 200))
        });
    }

    let engine = PrecisEngine::with_index(db, graph, index);
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.5),
        CardinalityConstraint::MaxTotalTuples(200),
    );
    let query = PrecisQuery::new(["comedy"]);
    c.bench_function("baseline/precis_comedy_200_tuples", |b| {
        b.iter(|| engine.answer(black_box(&query), &spec).unwrap())
    });
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
