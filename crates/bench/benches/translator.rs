//! Narrative synthesis cost (§5.3): how long the Translator takes to turn a
//! précis answer into text, per answer size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use precis_core::{AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery};
use precis_datagen::{movies_graph, movies_vocabulary, MoviesConfig, MoviesGenerator};
use precis_nlg::Translator;
use std::hint::black_box;

fn bench_translator(c: &mut Criterion) {
    let db = MoviesGenerator::new(MoviesConfig {
        movies: 1_000,
        directors: 100,
        actors: 400,
        theatres: 20,
        plays: 1_500,
        seed: 31,
        ..MoviesConfig::default()
    })
    .generate();
    let vocab = movies_vocabulary(db.schema());
    let engine = PrecisEngine::new(db, movies_graph()).expect("engine builds");

    let mut group = c.benchmark_group("translator/narrate_comedy");
    for per_rel in [5usize, 20, 50] {
        let answer = engine
            .answer(
                &PrecisQuery::new(["comedy"]),
                &AnswerSpec::new(
                    DegreeConstraint::MinWeight(0.7),
                    CardinalityConstraint::MaxTuplesPerRelation(per_rel),
                ),
            )
            .expect("query answers");
        group.bench_with_input(BenchmarkId::from_parameter(per_rel), &per_rel, |b, _| {
            let t = Translator::new(engine.database(), engine.graph(), &vocab);
            b.iter(|| t.translate(black_box(&answer)).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translator);
criterion_main!(benches);
