//! Figure 7: Result Schema Generator execution time as a function of the
//! degree constraint `d` (max projections in the answer).
//!
//! The paper's finding: "the execution time of the Result Schema Generator
//! is very small even for large values of d" — overall negligible next to
//! the Result Database Generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use precis_bench::figures::{fig7_large_graph, fig7_movies_graph};
use precis_core::{generate_result_schema, DegreeConstraint};
use precis_datagen::random_weight_graph;
use precis_storage::RelationId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);

    let mut group = c.benchmark_group("fig7/movies");
    let movies = random_weight_graph(&fig7_movies_graph(), &mut rng);
    for d in [2usize, 6, 10, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let constraint = DegreeConstraint::TopProjections(d);
            b.iter(|| {
                generate_result_schema(
                    black_box(&movies),
                    black_box(&[RelationId(6)]), // DIRECTOR
                    &constraint,
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig7/tree15x60");
    let large = random_weight_graph(&fig7_large_graph(), &mut rng);
    for d in [10usize, 30, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let constraint = DegreeConstraint::TopProjections(d);
            b.iter(|| {
                generate_result_schema(black_box(&large), black_box(&[RelationId(0)]), &constraint)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
