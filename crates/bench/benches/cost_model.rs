//! The two primitives of the paper's cost model (Formula 1): `IndexTime`
//! (find the tuple ids for a value in an index) and `TupleTime` (read a
//! tuple given its id). These micro-costs, multiplied by `c_R · n_R`, must
//! predict the Result Database Generator's time (Formula 2) — the
//! `experiments cost-model` binary prints the validation table.

use criterion::{criterion_group, criterion_main, Criterion};
use precis_datagen::chain_db_fanout;
use precis_storage::{TupleId, Value};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let (db, graph) = chain_db_fanout(2, 10_000, 1, 3);
    let r1 = graph.schema().relation_id("R1").unwrap();
    let fk = graph.schema().relation(r1).attr_position("r0_id").unwrap();

    c.bench_function("cost_model/index_time", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            db.lookup(r1, fk, black_box(&Value::from(i as i64)))
                .unwrap()
                .len()
        })
    });

    c.bench_function("cost_model/tuple_time", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            db.fetch_from(r1, black_box(TupleId(i))).unwrap().arity()
        })
    });
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
