//! Figure 8: Result Database Generator execution time as the per-relation
//! cardinality `c_R` grows, with `n_R = 4` populated relations, NaïveQ.
//!
//! The paper's finding: time grows almost linearly with `c_R` (Formula 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use precis_bench::workloads::{
    bench_movies_db, bench_movies_graph, connected_relation_sets, full_result_schema,
    random_seed_tids, restrict_graph, run_db_generation,
};
use precis_core::RetrievalStrategy;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let db = bench_movies_db(0xF168);
    let graph = bench_movies_graph();
    let set = connected_relation_sets(&graph, 4)
        .into_iter()
        .next()
        .expect("a connected 4-set exists");
    let restricted = restrict_graph(&graph, &set);
    let origin = set[0];
    let schema = full_result_schema(&restricted, origin);

    let mut group = c.benchmark_group("fig8/naiveq_n4");
    for c_r in [10usize, 30, 50, 70, 90] {
        let seeds = random_seed_tids(&db, origin, c_r, 8);
        group.bench_with_input(BenchmarkId::from_parameter(c_r), &c_r, |b, &c_r| {
            b.iter(|| {
                run_db_generation(
                    black_box(&db),
                    &restricted,
                    &schema,
                    origin,
                    &seeds,
                    c_r,
                    RetrievalStrategy::NaiveQ,
                    true,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
