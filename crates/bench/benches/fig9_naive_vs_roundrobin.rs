//! Figure 9: NaïveQ vs. Round-Robin as the number of populated relations
//! `n_R` grows, at fixed `c_R = 50`.
//!
//! The paper's findings: time grows almost linearly with `n_R`, and
//! Round-Robin costs more than NaïveQ (it opens one scan per join value and
//! retrieves a single tuple at a time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use precis_bench::workloads::{full_result_schema, random_seed_tids_in_range, run_db_generation};
use precis_core::RetrievalStrategy;
use precis_datagen::chain_db_fanout;
use std::hint::black_box;

const C_R: usize = 50;
const ROWS: usize = 2_000;
const FANOUT: usize = 8;

fn bench_fig9(c: &mut Criterion) {
    for (label, strategy) in [
        ("naiveq", RetrievalStrategy::NaiveQ),
        ("round_robin", RetrievalStrategy::RoundRobin),
    ] {
        let mut group = c.benchmark_group(format!("fig9/{label}"));
        for n_r in [2usize, 4, 8] {
            let (db, graph) = chain_db_fanout(n_r, ROWS, FANOUT, 9 ^ n_r as u64);
            let r0 = graph.schema().relation_id("R0").unwrap();
            let schema = full_result_schema(&graph, r0);
            let seeds = random_seed_tids_in_range(&db, r0, ROWS / FANOUT, C_R, 9);
            group.bench_with_input(BenchmarkId::from_parameter(n_r), &n_r, |b, _| {
                b.iter(|| {
                    run_db_generation(
                        black_box(&db),
                        &graph,
                        &schema,
                        r0,
                        &seeds,
                        C_R,
                        strategy,
                        true,
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
