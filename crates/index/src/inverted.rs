//! The inverted index proper.
//!
//! Postings are keyed by interned symbol id ([`Sym`]) rather than owned
//! strings, each `(relation, attribute)` location holds a **sorted,
//! deduplicated** tid list behind an [`Arc`], and multi-word phrase lookups
//! prefilter candidates with galloping intersection before verifying
//! contiguity against the stored value. Single-word lookups hand back
//! `Arc` clones of the stored lists, so warm lookups allocate nothing per
//! posting.

use crate::postings::intersect_many;
use crate::tokenizer::Tokenizer;
use precis_storage::{DataType, Database, RelationId, Sym, SymbolTable, TupleId, ValueRef};
use std::collections::HashMap;
use std::sync::Arc;

/// An index location: one `(relation, attribute)` pair.
type Loc = (RelationId, usize);

/// The per-word posting list: one sorted, shared tid list per location.
type LocPostings = Vec<(Loc, Arc<Vec<TupleId>>)>;

/// One occurrence entry of a token: the `(R_j, A_lj, Tids_lj)` triple the
/// paper's index returns. The tid list is sorted, deduplicated, and shared
/// with the index itself (no copy on lookup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    pub rel: RelationId,
    pub attr: usize,
    pub tids: Arc<Vec<TupleId>>,
}

/// Word-level inverted index over the `Text` attributes of a database.
///
/// ```
/// use precis_storage::{Database, DatabaseSchema, RelationSchema, DataType, Value};
/// use precis_index::InvertedIndex;
///
/// let mut schema = DatabaseSchema::new("d");
/// schema.add_relation(RelationSchema::builder("DIRECTOR")
///     .attr_not_null("did", DataType::Int).attr("dname", DataType::Text)
///     .primary_key("did").build()?)?;
/// let mut db = Database::new(schema)?;
/// db.insert("DIRECTOR", vec![Value::from(1), Value::from("Woody Allen")])?;
///
/// let index = InvertedIndex::build(&db);
/// let occurrences = index.lookup(&db, "woody allen"); // phrases work
/// assert_eq!(occurrences.len(), 1);
/// assert_eq!(occurrences[0].tids.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    tokenizer: Tokenizer,
    /// word symbol → locations (sorted by `(relation, attribute)`), each
    /// with its sorted tid list.
    postings: HashMap<Sym, LocPostings>,
    words: u64,
}

impl InvertedIndex {
    /// Build the index over every live tuple of `db`.
    pub fn build(db: &Database) -> Self {
        Self::build_with(db, Tokenizer::default())
    }

    /// Build with a custom tokenizer (e.g. with stopwords).
    pub fn build_with(db: &Database, tokenizer: Tokenizer) -> Self {
        let mut idx = InvertedIndex {
            tokenizer,
            postings: HashMap::new(),
            words: 0,
        };
        let rels: Vec<RelationId> = db.schema().relations().map(|(id, _)| id).collect();
        for rel in rels {
            let tids: Vec<TupleId> = db.table(rel).iter().map(|(tid, _)| tid).collect();
            for tid in tids {
                idx.add_tuple(db, rel, tid);
            }
        }
        idx
    }

    /// Index one tuple (call after inserting it into `db`).
    pub fn add_tuple(&mut self, db: &Database, rel: RelationId, tid: TupleId) {
        let Some(tuple) = db.table(rel).get(tid) else {
            return;
        };
        let schema = db.relation_schema(rel);
        let table = SymbolTable::global();
        for (attr, def) in schema.attributes().iter().enumerate() {
            if def.ty != DataType::Text {
                continue;
            }
            let ValueRef::Text(text) = tuple.get(attr) else {
                continue;
            };
            for word in self.tokenizer.words(text) {
                self.words += 1;
                let by_loc = self.postings.entry(table.intern(&word)).or_default();
                let slot = match by_loc.binary_search_by_key(&(rel, attr), |(loc, _)| *loc) {
                    Ok(i) => i,
                    Err(i) => {
                        by_loc.insert(i, ((rel, attr), Arc::new(Vec::new())));
                        i
                    }
                };
                let list = Arc::make_mut(&mut by_loc[slot].1);
                // Keep the list sorted and deduplicated; appends dominate
                // because tuple ids grow monotonically.
                match list.last() {
                    Some(&last) if last >= tid => {
                        if last > tid {
                            let at = list.partition_point(|&t| t < tid);
                            if list.get(at) != Some(&tid) {
                                list.insert(at, tid);
                            }
                        }
                    }
                    _ => list.push(tid),
                }
            }
        }
    }

    /// Remove one tuple's postings (call before deleting it from `db`).
    pub fn remove_tuple(&mut self, db: &Database, rel: RelationId, tid: TupleId) {
        let Some(tuple) = db.table(rel).get(tid) else {
            return;
        };
        let schema = db.relation_schema(rel);
        let table = SymbolTable::global();
        for (attr, def) in schema.attributes().iter().enumerate() {
            if def.ty != DataType::Text {
                continue;
            }
            let ValueRef::Text(text) = tuple.get(attr) else {
                continue;
            };
            for word in self.tokenizer.words(text) {
                let Some(sym) = table.lookup(&word) else {
                    continue;
                };
                if let Some(by_loc) = self.postings.get_mut(&sym) {
                    if let Ok(i) = by_loc.binary_search_by_key(&(rel, attr), |(loc, _)| *loc) {
                        let list = Arc::make_mut(&mut by_loc[i].1);
                        if let Ok(at) = list.binary_search(&tid) {
                            list.remove(at);
                        }
                        if list.is_empty() {
                            by_loc.remove(i);
                        }
                    }
                    if by_loc.is_empty() {
                        self.postings.remove(&sym);
                    }
                }
            }
        }
    }

    /// All occurrences of `token` — the paper's
    /// `k_i → {(R_j, A_lj, Tids_lj)}` mapping. `token` may be a multi-word
    /// phrase; a tuple qualifies when its attribute value contains the
    /// phrase's words contiguously and in order.
    ///
    /// Occurrences are sorted by (relation, attribute) and tid lists are
    /// sorted, so results are deterministic. Single-word lookups share the
    /// index's own posting lists (`Arc` clone, no per-tid copying); phrase
    /// lookups intersect the words' postings with galloping search and only
    /// then verify contiguity tuple by tuple.
    pub fn lookup(&self, db: &Database, token: &str) -> Vec<Occurrence> {
        let words = self.tokenizer.words(token);
        if words.is_empty() {
            return Vec::new();
        }
        let table = SymbolTable::global();
        let mut word_postings: Vec<&LocPostings> = Vec::with_capacity(words.len());
        for w in &words {
            // A word the symbol table has never seen is stored nowhere, so
            // the whole phrase misses (and we avoid interning query noise).
            let Some(sym) = table.lookup(w) else {
                return Vec::new();
            };
            let Some(by_loc) = self.postings.get(&sym) else {
                return Vec::new();
            };
            word_postings.push(by_loc);
        }

        let (first, rest) = word_postings.split_first().expect("words is non-empty");
        if rest.is_empty() {
            // Allocation-free warm path: hand out the stored lists.
            return first
                .iter()
                .map(|(loc, tids)| Occurrence {
                    rel: loc.0,
                    attr: loc.1,
                    tids: Arc::clone(tids),
                })
                .collect();
        }

        let mut out: Vec<Occurrence> = Vec::new();
        'locs: for ((rel, attr), first_tids) in first.iter() {
            // Every word of the phrase must occur at this same location.
            let mut lists: Vec<&[TupleId]> = Vec::with_capacity(words.len());
            lists.push(first_tids);
            for by_loc in rest {
                match by_loc.binary_search_by_key(&(*rel, *attr), |(loc, _)| *loc) {
                    Ok(i) => lists.push(&by_loc[i].1),
                    Err(_) => continue 'locs,
                }
            }
            let candidates = intersect_many(&lists);
            let hits: Vec<TupleId> = candidates
                .into_iter()
                .filter(|&tid| self.phrase_matches(db, *rel, *attr, tid, &words))
                .collect();
            if !hits.is_empty() {
                out.push(Occurrence {
                    rel: *rel,
                    attr: *attr,
                    tids: Arc::new(hits),
                });
            }
        }
        out
    }

    /// Verify the phrase occurs contiguously in the stored value.
    fn phrase_matches(
        &self,
        db: &Database,
        rel: RelationId,
        attr: usize,
        tid: TupleId,
        words: &[String],
    ) -> bool {
        let Some(tuple) = db.table(rel).get(tid) else {
            return false;
        };
        let ValueRef::Text(text) = tuple.get(attr) else {
            return false;
        };
        let value_words = self.tokenizer.words(text);
        value_words.windows(words.len()).any(|w| w == words)
    }

    /// Number of distinct indexed words.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Total number of word occurrences indexed.
    pub fn indexed_words(&self) -> u64 {
        self.words
    }

    /// Document frequency of a single word: the number of distinct
    /// (relation, attribute, tuple) postings containing it. Phrases return
    /// the df of their rarest word (an upper bound on the phrase's own df).
    pub fn document_frequency(&self, token: &str) -> usize {
        let table = SymbolTable::global();
        let words = self.tokenizer.words(token);
        words
            .iter()
            .map(|w| {
                table
                    .lookup(w)
                    .and_then(|sym| self.postings.get(&sym))
                    .map(|by_loc| by_loc.iter().map(|(_, tids)| tids.len()).sum())
                    .unwrap_or(0)
            })
            .min()
            .unwrap_or(0)
    }

    /// Inverse document frequency: `ln(1 + total_postings / df)`; rare
    /// tokens score high, missing tokens score 0. The standard IR relevance
    /// ingredient ("IR-style answer-relevance ranking", Related Work [9]).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.document_frequency(token);
        if df == 0 {
            return 0.0;
        }
        (1.0 + self.words as f64 / df as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::{DatabaseSchema, RelationSchema, Value};

    fn sample_db() -> Database {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("DIRECTOR")
                .attr_not_null("did", DataType::Int)
                .attr("dname", DataType::Text)
                .attr("blocation", DataType::Text)
                .primary_key("did")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_relation(
            RelationSchema::builder("ACTOR")
                .attr_not_null("aid", DataType::Int)
                .attr("aname", DataType::Text)
                .primary_key("aid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert(
            "DIRECTOR",
            vec![
                Value::from(1),
                Value::from("Woody Allen"),
                Value::from("Brooklyn, New York, USA"),
            ],
        )
        .unwrap();
        db.insert(
            "DIRECTOR",
            vec![
                Value::from(2),
                Value::from("Allen Smithee"),
                Value::from("Hollywood"),
            ],
        )
        .unwrap();
        db.insert("ACTOR", vec![Value::from(10), Value::from("Woody Allen")])
            .unwrap();
        db
    }

    fn names(db: &Database, occ: &Occurrence) -> (String, String) {
        let r = db.relation_schema(occ.rel);
        (r.name().to_owned(), r.attr_name(occ.attr).to_owned())
    }

    #[test]
    fn single_word_lookup_finds_all_locations() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        let occs = idx.lookup(&db, "allen");
        // DIRECTOR.dname (two tuples) and ACTOR.aname (one tuple).
        assert_eq!(occs.len(), 2);
        let total: usize = occs.iter().map(|o| o.tids.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn single_word_lookup_shares_postings_without_copying() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        let a = idx.lookup(&db, "allen");
        let b = idx.lookup(&db, "allen");
        for (x, y) in a.iter().zip(&b) {
            // Same Arc, not merely equal contents.
            assert!(Arc::ptr_eq(&x.tids, &y.tids));
        }
    }

    #[test]
    fn phrase_lookup_requires_contiguity() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        let occs = idx.lookup(&db, "Woody Allen");
        assert_eq!(occs.len(), 2, "director and actor homonyms");
        for o in &occs {
            assert_eq!(o.tids.len(), 1);
            let (_, attr) = names(&db, o);
            assert!(attr == "dname" || attr == "aname");
        }
        // "Allen Woody" is not contiguous in order anywhere.
        assert!(idx.lookup(&db, "Allen Woody").is_empty());
        // Phrase spanning punctuation still matches the tokenized value.
        let occs = idx.lookup(&db, "new york usa");
        assert_eq!(occs.len(), 1);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.lookup(&db, "WOODY ALLEN").len(), 2);
        assert_eq!(idx.lookup(&db, "hollywood").len(), 1);
    }

    #[test]
    fn missing_token_and_empty_query() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        assert!(idx.lookup(&db, "scorsese").is_empty());
        assert!(idx.lookup(&db, "  ,;  ").is_empty());
    }

    #[test]
    fn incremental_add_and_remove() {
        let mut db = sample_db();
        let mut idx = InvertedIndex::build(&db);
        let before = idx
            .lookup(&db, "allen")
            .iter()
            .map(|o| o.tids.len())
            .sum::<usize>();
        let tid = db
            .insert("ACTOR", vec![Value::from(11), Value::from("Tim Allen")])
            .unwrap();
        let actor = db.schema().relation_id("ACTOR").unwrap();
        idx.add_tuple(&db, actor, tid);
        let after = idx
            .lookup(&db, "allen")
            .iter()
            .map(|o| o.tids.len())
            .sum::<usize>();
        assert_eq!(after, before + 1);

        idx.remove_tuple(&db, actor, tid);
        db.delete(actor, tid).unwrap();
        let restored = idx
            .lookup(&db, "allen")
            .iter()
            .map(|o| o.tids.len())
            .sum::<usize>();
        assert_eq!(restored, before);
    }

    #[test]
    fn incremental_add_survives_outstanding_lookup_handles() {
        // A held lookup result must not observe later index mutations
        // (copy-on-write via Arc::make_mut).
        let mut db = sample_db();
        let mut idx = InvertedIndex::build(&db);
        let held = idx.lookup(&db, "allen");
        let held_total: usize = held.iter().map(|o| o.tids.len()).sum();
        let tid = db
            .insert("ACTOR", vec![Value::from(11), Value::from("Tim Allen")])
            .unwrap();
        let actor = db.schema().relation_id("ACTOR").unwrap();
        idx.add_tuple(&db, actor, tid);
        let fresh_total: usize = idx.lookup(&db, "allen").iter().map(|o| o.tids.len()).sum();
        assert_eq!(held.iter().map(|o| o.tids.len()).sum::<usize>(), held_total);
        assert_eq!(fresh_total, held_total + 1);
    }

    #[test]
    fn stats_reflect_content() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        assert!(idx.vocabulary_size() >= 8);
        assert!(idx.indexed_words() >= 10);
    }

    #[test]
    fn document_frequency_and_idf() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        // "allen" appears in 3 tuples (2 directors + 1 actor).
        assert_eq!(idx.document_frequency("allen"), 3);
        // "hollywood" appears once.
        assert_eq!(idx.document_frequency("hollywood"), 1);
        assert_eq!(idx.document_frequency("zzz"), 0);
        // Phrase df is bounded by the rarest word.
        assert_eq!(idx.document_frequency("woody allen"), 2);
        // Rare beats common; missing scores zero.
        assert!(idx.idf("hollywood") > idx.idf("allen"));
        assert_eq!(idx.idf("zzz"), 0.0);
    }

    #[test]
    fn repeated_word_in_one_value_indexes_once_per_tuple() {
        let mut db = sample_db();
        let tid = db
            .insert(
                "ACTOR",
                vec![Value::from(12), Value::from("Boutros Boutros")],
            )
            .unwrap();
        let actor = db.schema().relation_id("ACTOR").unwrap();
        let mut idx = InvertedIndex::build(&db);
        let occs = idx.lookup(&db, "boutros");
        assert_eq!(occs.len(), 1);
        assert_eq!(*occs[0].tids, vec![tid]);
        // And removal clears it fully.
        idx.remove_tuple(&db, actor, tid);
        assert!(idx.lookup(&db, "boutros").is_empty());
    }

    #[test]
    fn out_of_order_adds_keep_postings_sorted() {
        let mut db = sample_db();
        let t1 = db
            .insert("ACTOR", vec![Value::from(21), Value::from("Zed Allen")])
            .unwrap();
        let t2 = db
            .insert("ACTOR", vec![Value::from(22), Value::from("Ada Allen")])
            .unwrap();
        let actor = db.schema().relation_id("ACTOR").unwrap();
        let mut idx = InvertedIndex::default();
        // Index the later tuple first; the list must still come out sorted.
        idx.add_tuple(&db, actor, t2);
        idx.add_tuple(&db, actor, t1);
        idx.add_tuple(&db, actor, t1); // duplicate add is a no-op
        let occs = idx.lookup(&db, "allen");
        assert_eq!(occs.len(), 1);
        assert_eq!(*occs[0].tids, vec![t1, t2]);
    }
}
