//! The inverted index proper.

use crate::tokenizer::Tokenizer;
use precis_storage::{DataType, Database, RelationId, TupleId, Value};
use std::collections::HashMap;

/// One occurrence entry of a token: the `(R_j, A_lj, Tids_lj)` triple the
/// paper's index returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    pub rel: RelationId,
    pub attr: usize,
    pub tids: Vec<TupleId>,
}

/// Word-level inverted index over the `Text` attributes of a database.
///
/// ```
/// use precis_storage::{Database, DatabaseSchema, RelationSchema, DataType, Value};
/// use precis_index::InvertedIndex;
///
/// let mut schema = DatabaseSchema::new("d");
/// schema.add_relation(RelationSchema::builder("DIRECTOR")
///     .attr_not_null("did", DataType::Int).attr("dname", DataType::Text)
///     .primary_key("did").build()?)?;
/// let mut db = Database::new(schema)?;
/// db.insert("DIRECTOR", vec![Value::from(1), Value::from("Woody Allen")])?;
///
/// let index = InvertedIndex::build(&db);
/// let occurrences = index.lookup(&db, "woody allen"); // phrases work
/// assert_eq!(occurrences.len(), 1);
/// assert_eq!(occurrences[0].tids.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    tokenizer: Tokenizer,
    /// word → (relation, attribute) → tid list (insertion-ordered,
    /// deduplicated).
    postings: HashMap<String, HashMap<(RelationId, usize), Vec<TupleId>>>,
    words: u64,
}

impl InvertedIndex {
    /// Build the index over every live tuple of `db`.
    pub fn build(db: &Database) -> Self {
        Self::build_with(db, Tokenizer::default())
    }

    /// Build with a custom tokenizer (e.g. with stopwords).
    pub fn build_with(db: &Database, tokenizer: Tokenizer) -> Self {
        let mut idx = InvertedIndex {
            tokenizer,
            postings: HashMap::new(),
            words: 0,
        };
        let rels: Vec<RelationId> = db.schema().relations().map(|(id, _)| id).collect();
        for rel in rels {
            let tids: Vec<TupleId> = db.table(rel).iter().map(|(tid, _)| tid).collect();
            for tid in tids {
                idx.add_tuple(db, rel, tid);
            }
        }
        idx
    }

    /// Index one tuple (call after inserting it into `db`).
    pub fn add_tuple(&mut self, db: &Database, rel: RelationId, tid: TupleId) {
        let Some(tuple) = db.table(rel).get(tid) else {
            return;
        };
        let schema = db.relation_schema(rel);
        for (attr, def) in schema.attributes().iter().enumerate() {
            if def.ty != DataType::Text {
                continue;
            }
            let Value::Text(text) = &tuple[attr] else {
                continue;
            };
            for word in self.tokenizer.words(text) {
                self.words += 1;
                let list = self
                    .postings
                    .entry(word)
                    .or_default()
                    .entry((rel, attr))
                    .or_default();
                if list.last() != Some(&tid) {
                    list.push(tid);
                }
            }
        }
    }

    /// Remove one tuple's postings (call before deleting it from `db`).
    pub fn remove_tuple(&mut self, db: &Database, rel: RelationId, tid: TupleId) {
        let Some(tuple) = db.table(rel).get(tid) else {
            return;
        };
        let schema = db.relation_schema(rel);
        for (attr, def) in schema.attributes().iter().enumerate() {
            if def.ty != DataType::Text {
                continue;
            }
            let Value::Text(text) = &tuple[attr] else {
                continue;
            };
            for word in self.tokenizer.words(text) {
                if let Some(by_loc) = self.postings.get_mut(&word) {
                    if let Some(list) = by_loc.get_mut(&(rel, attr)) {
                        list.retain(|&t| t != tid);
                        if list.is_empty() {
                            by_loc.remove(&(rel, attr));
                        }
                    }
                    if by_loc.is_empty() {
                        self.postings.remove(&word);
                    }
                }
            }
        }
    }

    /// All occurrences of `token` — the paper's
    /// `k_i → {(R_j, A_lj, Tids_lj)}` mapping. `token` may be a multi-word
    /// phrase; a tuple qualifies when its attribute value contains the
    /// phrase's words contiguously and in order.
    ///
    /// Occurrences are sorted by (relation, attribute) and tid lists are
    /// sorted, so results are deterministic.
    pub fn lookup(&self, db: &Database, token: &str) -> Vec<Occurrence> {
        let words = self.tokenizer.words(token);
        let Some((first, rest)) = words.split_first() else {
            return Vec::new();
        };
        let Some(first_postings) = self.postings.get(first) else {
            return Vec::new();
        };
        let mut out: Vec<Occurrence> = Vec::new();
        for (&(rel, attr), tids) in first_postings {
            let mut hits: Vec<TupleId> = Vec::new();
            for &tid in tids {
                if rest.is_empty() || self.phrase_matches(db, rel, attr, tid, &words) {
                    hits.push(tid);
                }
            }
            if !hits.is_empty() {
                hits.sort_unstable();
                hits.dedup();
                out.push(Occurrence {
                    rel,
                    attr,
                    tids: hits,
                });
            }
        }
        out.sort_by_key(|o| (o.rel, o.attr));
        out
    }

    /// Verify the phrase occurs contiguously in the stored value.
    fn phrase_matches(
        &self,
        db: &Database,
        rel: RelationId,
        attr: usize,
        tid: TupleId,
        words: &[String],
    ) -> bool {
        let Some(tuple) = db.table(rel).get(tid) else {
            return false;
        };
        let Value::Text(text) = &tuple[attr] else {
            return false;
        };
        let value_words = self.tokenizer.words(text);
        value_words.windows(words.len()).any(|w| w == words)
    }

    /// Number of distinct indexed words.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Total number of word occurrences indexed.
    pub fn indexed_words(&self) -> u64 {
        self.words
    }

    /// Document frequency of a single word: the number of distinct
    /// (relation, attribute, tuple) postings containing it. Phrases return
    /// the df of their rarest word (an upper bound on the phrase's own df).
    pub fn document_frequency(&self, token: &str) -> usize {
        let words = self.tokenizer.words(token);
        words
            .iter()
            .map(|w| {
                self.postings
                    .get(w)
                    .map(|by_loc| by_loc.values().map(Vec::len).sum())
                    .unwrap_or(0)
            })
            .min()
            .unwrap_or(0)
    }

    /// Inverse document frequency: `ln(1 + total_postings / df)`; rare
    /// tokens score high, missing tokens score 0. The standard IR relevance
    /// ingredient ("IR-style answer-relevance ranking", Related Work [9]).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.document_frequency(token);
        if df == 0 {
            return 0.0;
        }
        (1.0 + self.words as f64 / df as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::{DatabaseSchema, RelationSchema};

    fn sample_db() -> Database {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("DIRECTOR")
                .attr_not_null("did", DataType::Int)
                .attr("dname", DataType::Text)
                .attr("blocation", DataType::Text)
                .primary_key("did")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_relation(
            RelationSchema::builder("ACTOR")
                .attr_not_null("aid", DataType::Int)
                .attr("aname", DataType::Text)
                .primary_key("aid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert(
            "DIRECTOR",
            vec![
                Value::from(1),
                Value::from("Woody Allen"),
                Value::from("Brooklyn, New York, USA"),
            ],
        )
        .unwrap();
        db.insert(
            "DIRECTOR",
            vec![
                Value::from(2),
                Value::from("Allen Smithee"),
                Value::from("Hollywood"),
            ],
        )
        .unwrap();
        db.insert("ACTOR", vec![Value::from(10), Value::from("Woody Allen")])
            .unwrap();
        db
    }

    fn names(db: &Database, occ: &Occurrence) -> (String, String) {
        let r = db.relation_schema(occ.rel);
        (r.name().to_owned(), r.attr_name(occ.attr).to_owned())
    }

    #[test]
    fn single_word_lookup_finds_all_locations() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        let occs = idx.lookup(&db, "allen");
        // DIRECTOR.dname (two tuples) and ACTOR.aname (one tuple).
        assert_eq!(occs.len(), 2);
        let total: usize = occs.iter().map(|o| o.tids.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn phrase_lookup_requires_contiguity() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        let occs = idx.lookup(&db, "Woody Allen");
        assert_eq!(occs.len(), 2, "director and actor homonyms");
        for o in &occs {
            assert_eq!(o.tids.len(), 1);
            let (_, attr) = names(&db, o);
            assert!(attr == "dname" || attr == "aname");
        }
        // "Allen Woody" is not contiguous in order anywhere.
        assert!(idx.lookup(&db, "Allen Woody").is_empty());
        // Phrase spanning punctuation still matches the tokenized value.
        let occs = idx.lookup(&db, "new york usa");
        assert_eq!(occs.len(), 1);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.lookup(&db, "WOODY ALLEN").len(), 2);
        assert_eq!(idx.lookup(&db, "hollywood").len(), 1);
    }

    #[test]
    fn missing_token_and_empty_query() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        assert!(idx.lookup(&db, "scorsese").is_empty());
        assert!(idx.lookup(&db, "  ,;  ").is_empty());
    }

    #[test]
    fn incremental_add_and_remove() {
        let mut db = sample_db();
        let mut idx = InvertedIndex::build(&db);
        let before = idx
            .lookup(&db, "allen")
            .iter()
            .map(|o| o.tids.len())
            .sum::<usize>();
        let tid = db
            .insert("ACTOR", vec![Value::from(11), Value::from("Tim Allen")])
            .unwrap();
        let actor = db.schema().relation_id("ACTOR").unwrap();
        idx.add_tuple(&db, actor, tid);
        let after = idx
            .lookup(&db, "allen")
            .iter()
            .map(|o| o.tids.len())
            .sum::<usize>();
        assert_eq!(after, before + 1);

        idx.remove_tuple(&db, actor, tid);
        db.delete(actor, tid).unwrap();
        let restored = idx
            .lookup(&db, "allen")
            .iter()
            .map(|o| o.tids.len())
            .sum::<usize>();
        assert_eq!(restored, before);
    }

    #[test]
    fn stats_reflect_content() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        assert!(idx.vocabulary_size() >= 8);
        assert!(idx.indexed_words() >= 10);
    }

    #[test]
    fn document_frequency_and_idf() {
        let db = sample_db();
        let idx = InvertedIndex::build(&db);
        // "allen" appears in 3 tuples (2 directors + 1 actor).
        assert_eq!(idx.document_frequency("allen"), 3);
        // "hollywood" appears once.
        assert_eq!(idx.document_frequency("hollywood"), 1);
        assert_eq!(idx.document_frequency("zzz"), 0);
        // Phrase df is bounded by the rarest word.
        assert_eq!(idx.document_frequency("woody allen"), 2);
        // Rare beats common; missing scores zero.
        assert!(idx.idf("hollywood") > idx.idf("allen"));
        assert_eq!(idx.idf("zzz"), 0.0);
    }

    #[test]
    fn repeated_word_in_one_value_indexes_once_per_tuple() {
        let mut db = sample_db();
        let tid = db
            .insert(
                "ACTOR",
                vec![Value::from(12), Value::from("Boutros Boutros")],
            )
            .unwrap();
        let actor = db.schema().relation_id("ACTOR").unwrap();
        let mut idx = InvertedIndex::build(&db);
        let occs = idx.lookup(&db, "boutros");
        assert_eq!(occs.len(), 1);
        assert_eq!(occs[0].tids, vec![tid]);
        // And removal clears it fully.
        idx.remove_tuple(&db, actor, tid);
        assert!(idx.lookup(&db, "boutros").is_empty());
    }
}
