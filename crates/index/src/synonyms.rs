//! Synonym handling (paper §5.1): "different values may be used for the
//! same object (synonyms); e.g., W. Allen and Woody Allen that correspond
//! to the same person… there exist approaches for cleaning and homogenizing
//! string data" — the paper treats reconciliation as orthogonal, so we
//! provide the hook: a designer-curated synonym dictionary expanded at
//! lookup time.

use crate::inverted::{InvertedIndex, Occurrence};
use crate::postings::merge_k;
use crate::tokenizer::Tokenizer;
use precis_storage::{Database, TupleId};
use std::collections::HashMap;
use std::sync::Arc;

/// Groups of phrases that denote the same object. Matching is
/// tokenizer-normalized (case- and punctuation-insensitive).
#[derive(Debug, Clone, Default)]
pub struct SynonymMap {
    tokenizer: Tokenizer,
    groups: Vec<Vec<String>>,
    by_phrase: HashMap<String, usize>,
}

impl SynonymMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a group of equivalent phrases. Phrases already in another
    /// group pull that group in (groups merge transitively).
    pub fn add_group<I, S>(&mut self, phrases: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let normalized: Vec<String> = phrases
            .into_iter()
            .map(|p| self.normalize(&p.into()))
            .filter(|p| !p.is_empty())
            .collect();
        if normalized.is_empty() {
            return;
        }
        // Merge with any group an incoming phrase already belongs to.
        let existing: Option<usize> = normalized
            .iter()
            .find_map(|p| self.by_phrase.get(p).copied());
        let gid = existing.unwrap_or_else(|| {
            self.groups.push(Vec::new());
            self.groups.len() - 1
        });
        for p in normalized {
            if !self.groups[gid].contains(&p) {
                self.groups[gid].push(p.clone());
                self.by_phrase.insert(p, gid);
            }
        }
    }

    /// All phrases equivalent to `token` (including its normalized self).
    pub fn expand(&self, token: &str) -> Vec<String> {
        let norm = self.normalize(token);
        match self.by_phrase.get(&norm) {
            Some(&gid) => self.groups[gid].clone(),
            None => vec![norm],
        }
    }

    /// Number of registered groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn normalize(&self, phrase: &str) -> String {
        self.tokenizer.words(phrase).join(" ")
    }
}

impl InvertedIndex {
    /// Lookup with synonym expansion: the union of the occurrences of every
    /// variant of `token`, merged per (relation, attribute).
    pub fn lookup_with_synonyms(
        &self,
        db: &Database,
        token: &str,
        synonyms: &SynonymMap,
    ) -> Vec<Occurrence> {
        let mut merged: HashMap<(precis_storage::RelationId, usize), Vec<Arc<Vec<TupleId>>>> =
            HashMap::new();
        for variant in synonyms.expand(token) {
            for occ in self.lookup(db, &variant) {
                merged
                    .entry((occ.rel, occ.attr))
                    .or_default()
                    .push(occ.tids);
            }
        }
        let mut out: Vec<Occurrence> = merged
            .into_iter()
            .map(|((rel, attr), mut lists)| {
                let tids = if lists.len() == 1 {
                    // Single variant hit: share its postings untouched.
                    lists.pop().expect("one list")
                } else {
                    let slices: Vec<&[TupleId]> = lists.iter().map(|l| l.as_slice()).collect();
                    Arc::new(merge_k(&slices))
                };
                Occurrence { rel, attr, tids }
            })
            .collect();
        out.sort_by_key(|o| (o.rel, o.attr));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::{DataType, DatabaseSchema, RelationSchema, Value};

    fn db() -> Database {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("P")
                .attr_not_null("id", DataType::Int)
                .attr("name", DataType::Text)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert("P", vec![Value::from(1), Value::from("Woody Allen")])
            .unwrap();
        db.insert("P", vec![Value::from(2), Value::from("W. Allen")])
            .unwrap();
        db.insert("P", vec![Value::from(3), Value::from("Diane Keaton")])
            .unwrap();
        db
    }

    #[test]
    fn expansion_unifies_variants() {
        let mut syn = SynonymMap::new();
        syn.add_group(["Woody Allen", "W. Allen"]);
        let mut variants = syn.expand("woody allen");
        variants.sort();
        assert_eq!(variants, vec!["w allen", "woody allen"]);
        assert_eq!(syn.expand("diane keaton"), vec!["diane keaton"]);
        assert_eq!(syn.group_count(), 1);
    }

    #[test]
    fn groups_merge_transitively() {
        let mut syn = SynonymMap::new();
        syn.add_group(["A B", "C D"]);
        syn.add_group(["C D", "E F"]);
        assert_eq!(syn.group_count(), 1);
        assert_eq!(syn.expand("a b").len(), 3);
        syn.add_group(Vec::<String>::new()); // no-op
        assert_eq!(syn.group_count(), 1);
    }

    #[test]
    fn lookup_with_synonyms_finds_both_spellings() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let mut syn = SynonymMap::new();
        syn.add_group(["Woody Allen", "W. Allen"]);

        // Plain lookup sees only the exact phrase.
        let plain = idx.lookup(&db, "Woody Allen");
        assert_eq!(plain.iter().map(|o| o.tids.len()).sum::<usize>(), 1);

        // Synonym-expanded lookup unifies both tuples.
        let expanded = idx.lookup_with_synonyms(&db, "Woody Allen", &syn);
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].tids.len(), 2);

        // And the reverse direction works too.
        let expanded = idx.lookup_with_synonyms(&db, "w. allen", &syn);
        assert_eq!(expanded[0].tids.len(), 2);
    }

    #[test]
    fn unknown_tokens_fall_through() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let syn = SynonymMap::new();
        assert!(idx.lookup_with_synonyms(&db, "nobody", &syn).is_empty());
        let keaton = idx.lookup_with_synonyms(&db, "keaton", &syn);
        assert_eq!(keaton.len(), 1);
    }
}
