//! Sorted-postings primitives: exponential ("galloping") search, galloping
//! list intersection, and k-way sorted-merge union.
//!
//! Postings lists are sorted and deduplicated, so intersection can skip
//! ahead exponentially instead of scanning linearly — the classic trick for
//! skewed list sizes, where the short list drives probes into the long one
//! in `O(short · log(long/short))` comparisons.

/// First index `i` in sorted `list` with `list[i] >= target`, found by
/// exponential probing followed by a binary search of the bracketed range.
/// Returns `list.len()` when every element is smaller.
pub fn gallop<T: Ord>(list: &[T], target: &T) -> usize {
    if list.first().is_none_or(|x| x >= target) {
        return 0;
    }
    // Invariant: list[lo] < target.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < list.len() && list[lo + step] < *target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(list.len());
    lo + 1 + list[lo + 1..hi].partition_point(|x| x < target)
}

/// Intersection of two sorted, deduplicated lists. The shorter list drives
/// galloping probes into the longer one; output is sorted and deduplicated.
pub fn intersect<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut base = 0usize;
    for x in small {
        if base >= large.len() {
            break;
        }
        let idx = base + gallop(&large[base..], x);
        if large.get(idx) == Some(x) {
            out.push(*x);
            base = idx + 1;
        } else {
            base = idx;
        }
    }
    out
}

/// Intersection of any number of sorted, deduplicated lists, smallest-first
/// so the intermediate result shrinks as fast as possible. No lists
/// intersect to the empty list; one list copies through.
pub fn intersect_many<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    match lists {
        [] => Vec::new(),
        [only] => only.to_vec(),
        _ => {
            let mut order: Vec<&[T]> = lists.to_vec();
            order.sort_by_key(|l| l.len());
            let mut acc = intersect(order[0], order[1]);
            for l in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                acc = intersect(&acc, l);
            }
            acc
        }
    }
}

/// Sorted, deduplicated union of any number of sorted, deduplicated lists
/// (a k-way heap merge).
pub fn merge_k<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut cursors = vec![1usize; lists.len()];
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = lists
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.first().map(|&x| Reverse((x, i))))
        .collect();
    let mut out = Vec::with_capacity(lists.iter().map(|l| l.len()).max().unwrap_or(0));
    while let Some(Reverse((x, i))) = heap.pop() {
        if out.last() != Some(&x) {
            out.push(x);
        }
        if let Some(&y) = lists[i].get(cursors[i]) {
            cursors[i] += 1;
            heap.push(Reverse((y, i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference implementation: two-pointer linear intersection.
    fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let list = [2u32, 4, 4, 8, 16, 32];
        assert_eq!(gallop(&list, &0), 0);
        assert_eq!(gallop(&list, &2), 0);
        assert_eq!(gallop(&list, &3), 1);
        assert_eq!(gallop(&list, &16), 4);
        assert_eq!(gallop(&list, &33), 6);
        assert_eq!(gallop(&[] as &[u32], &5), 0);
    }

    #[test]
    fn intersect_edge_cases() {
        assert_eq!(intersect(&[1u32, 2, 3], &[]), Vec::<u32>::new());
        assert_eq!(intersect(&[], &[1u32, 2, 3]), Vec::<u32>::new());
        assert_eq!(intersect(&[1u32, 5, 9], &[2, 6, 10]), Vec::<u32>::new());
        assert_eq!(intersect(&[1u32, 2, 3], &[1, 2, 3]), vec![1, 2, 3]);
        // Highly skewed sizes exercise the galloping path.
        let long: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        assert_eq!(
            intersect(&[2997u32, 9998, 29_994], &long),
            vec![2997, 29_994]
        );
    }

    #[test]
    fn intersect_many_and_merge_k() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [3u32, 4, 5, 9];
        let c = [5u32, 9, 11];
        assert_eq!(intersect_many(&[&a, &b, &c]), vec![5, 9]);
        assert_eq!(intersect_many::<u32>(&[]), Vec::<u32>::new());
        assert_eq!(intersect_many(&[&a as &[u32]]), a.to_vec());
        assert_eq!(merge_k(&[&a, &b, &c]), vec![1, 3, 4, 5, 7, 9, 11]);
        assert_eq!(merge_k::<u32>(&[]), Vec::<u32>::new());
        assert_eq!(merge_k(&[&[] as &[u32], &b]), b.to_vec());
    }

    proptest! {
        #[test]
        fn galloping_matches_naive_intersection(
            a in proptest::collection::vec(0u32..500, 0..200),
            b in proptest::collection::vec(0u32..500, 0..200),
        ) {
            let a = sorted_dedup(a);
            let b = sorted_dedup(b);
            prop_assert_eq!(intersect(&a, &b), naive_intersect(&a, &b));
            prop_assert_eq!(intersect(&b, &a), naive_intersect(&a, &b));
        }

        #[test]
        fn merge_k_matches_set_union(
            lists in proptest::collection::vec(
                proptest::collection::vec(0u32..300, 0..60), 0..6),
        ) {
            let lists: Vec<Vec<u32>> = lists.into_iter().map(sorted_dedup).collect();
            let slices: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            let expect: Vec<u32> = lists
                .iter()
                .flatten()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            prop_assert_eq!(merge_k(&slices), expect);
        }

        #[test]
        fn intersect_many_matches_folded_naive(
            lists in proptest::collection::vec(
                proptest::collection::vec(0u32..200, 0..80), 1..5),
        ) {
            let lists: Vec<Vec<u32>> = lists.into_iter().map(sorted_dedup).collect();
            let slices: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            let mut expect = lists[0].clone();
            for l in &lists[1..] {
                expect = naive_intersect(&expect, l);
            }
            prop_assert_eq!(intersect_many(&slices), expect);
        }
    }
}
