//! # precis-index
//!
//! The **inverted index** module of the Précis system architecture (§4):
//! "an inverted index associates each token that appears in the database
//! with a list of occurrences of the token. Each occurrence is recorded as
//! an attribute-relation pair (R_j, A_lj) \[with\] the list Tids_lj of ids of
//! tuples from R_j in which A_lj includes the token."
//!
//! Word-level postings are built over every `Text` attribute; query tokens
//! may be multi-word phrases (`"Woody Allen"`), which are answered by
//! intersecting word postings and verifying contiguity against the stored
//! value.

mod inverted;
pub mod postings;
mod synonyms;
mod tokenizer;

pub use inverted::{InvertedIndex, Occurrence};
pub use postings::{gallop, intersect, intersect_many, merge_k};
pub use synonyms::SynonymMap;
pub use tokenizer::{tokenize, Tokenizer};
