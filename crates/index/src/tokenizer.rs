//! Word tokenizer: case-folded alphanumeric runs.

/// Splits `text` into lowercase alphanumeric words. Punctuation and
/// whitespace separate words; `"Brooklyn, New York"` → `["brooklyn", "new",
/// "york"]`.
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::default().words(text)
}

/// Configurable tokenizer. The default lowercases and splits on
/// non-alphanumeric characters; stopwords may be dropped for index
/// compactness (they are kept by default so phrase queries stay exact).
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    stopwords: Vec<String>,
}

impl Tokenizer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the given words (compared case-insensitively) from output.
    pub fn with_stopwords<I, S>(stopwords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Tokenizer {
            stopwords: stopwords
                .into_iter()
                .map(|s| s.into().to_lowercase())
                .collect(),
        }
    }

    /// Tokenize `text` into words.
    pub fn words(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                current.extend(ch.to_lowercase());
            } else if !current.is_empty() {
                self.push_word(&mut out, std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            self.push_word(&mut out, current);
        }
        out
    }

    fn push_word(&self, out: &mut Vec<String>, word: String) {
        if !self.stopwords.contains(&word) {
            out.push(word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Woody Allen"),
            vec!["woody".to_owned(), "allen".to_owned()]
        );
        assert_eq!(
            tokenize("Brooklyn, New-York (USA)"),
            vec!["brooklyn", "new", "york", "usa"]
        );
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("Match Point 2005"), vec!["match", "point", "2005"]);
    }

    #[test]
    fn unicode_case_folding() {
        assert_eq!(tokenize("Mélinda"), vec!["mélinda"]);
        assert_eq!(tokenize("ÎLE"), vec!["île"]);
    }

    #[test]
    fn stopwords_are_dropped() {
        let t = Tokenizer::with_stopwords(["the", "of"]);
        assert_eq!(
            t.words("The Curse of the Jade Scorpion"),
            vec!["curse", "jade", "scorpion"]
        );
    }
}
