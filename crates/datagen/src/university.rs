//! A second domain — a university database — demonstrating that the précis
//! machinery (graph, constraints, generation, narration) is entirely
//! schema-agnostic: nothing in the engine knows about movies.
//!
//! ```text
//! DEPARTMENT(deptid, dname, building)
//! PROFESSOR(profid, pname, title, deptid)
//! COURSE(cid, cname, credits, deptid)
//! TEACHES(tid, profid, cid, semester)     — bridge, no heading attribute
//! STUDENT(sid, sname, year)
//! ENROLLED(eid, sid, cid, grade)          — bridge, no heading attribute
//! ```

use precis_graph::SchemaGraph;
use precis_nlg::Vocabulary;
use precis_storage::{DataType, Database, DatabaseSchema, ForeignKey, RelationSchema, Value};

/// Build the university schema.
pub fn university_schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("university");
    let add = |s: &mut DatabaseSchema, r: RelationSchema| {
        s.add_relation(r).expect("unique relation names");
    };
    add(
        &mut s,
        RelationSchema::builder("DEPARTMENT")
            .attr_not_null("deptid", DataType::Int)
            .attr("dname", DataType::Text)
            .attr("building", DataType::Text)
            .primary_key("deptid")
            .build()
            .expect("valid DEPARTMENT schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("PROFESSOR")
            .attr_not_null("profid", DataType::Int)
            .attr("pname", DataType::Text)
            .attr("title", DataType::Text)
            .attr("deptid", DataType::Int)
            .primary_key("profid")
            .build()
            .expect("valid PROFESSOR schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("COURSE")
            .attr_not_null("cid", DataType::Int)
            .attr("cname", DataType::Text)
            .attr("credits", DataType::Int)
            .attr("deptid", DataType::Int)
            .primary_key("cid")
            .build()
            .expect("valid COURSE schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("TEACHES")
            .attr_not_null("tid", DataType::Int)
            .attr("profid", DataType::Int)
            .attr("cid", DataType::Int)
            .attr("semester", DataType::Text)
            .primary_key("tid")
            .build()
            .expect("valid TEACHES schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("STUDENT")
            .attr_not_null("sid", DataType::Int)
            .attr("sname", DataType::Text)
            .attr("year", DataType::Int)
            .primary_key("sid")
            .build()
            .expect("valid STUDENT schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("ENROLLED")
            .attr_not_null("eid", DataType::Int)
            .attr("sid", DataType::Int)
            .attr("cid", DataType::Int)
            .attr("grade", DataType::Text)
            .primary_key("eid")
            .build()
            .expect("valid ENROLLED schema"),
    );
    for (rel, attr, to, to_attr) in [
        ("PROFESSOR", "deptid", "DEPARTMENT", "deptid"),
        ("COURSE", "deptid", "DEPARTMENT", "deptid"),
        ("TEACHES", "profid", "PROFESSOR", "profid"),
        ("TEACHES", "cid", "COURSE", "cid"),
        ("ENROLLED", "sid", "STUDENT", "sid"),
        ("ENROLLED", "cid", "COURSE", "cid"),
    ] {
        s.add_foreign_key(ForeignKey::new(rel, attr, to, to_attr))
            .expect("valid foreign keys");
    }
    s
}

/// A designer-weighted schema graph for the university domain.
pub fn university_graph() -> SchemaGraph {
    SchemaGraph::builder(university_schema())
        .projection("DEPARTMENT", "dname", 1.0)
        .expect("valid edge")
        .projection("DEPARTMENT", "building", 0.7)
        .expect("valid edge")
        .projection("PROFESSOR", "pname", 1.0)
        .expect("valid edge")
        .projection("PROFESSOR", "title", 0.9)
        .expect("valid edge")
        .projection("COURSE", "cname", 1.0)
        .expect("valid edge")
        .projection("COURSE", "credits", 0.6)
        .expect("valid edge")
        .projection("TEACHES", "semester", 0.4)
        .expect("valid edge")
        .projection("STUDENT", "sname", 1.0)
        .expect("valid edge")
        .projection("STUDENT", "year", 0.6)
        .expect("valid edge")
        .projection("ENROLLED", "grade", 0.5)
        .expect("valid edge")
        .join_both("PROFESSOR", "deptid", "DEPARTMENT", "deptid", 0.9, 0.8)
        .expect("valid edge")
        .join_both("COURSE", "deptid", "DEPARTMENT", "deptid", 0.85, 0.8)
        .expect("valid edge")
        .join_both("TEACHES", "profid", "PROFESSOR", "profid", 1.0, 0.95)
        .expect("valid edge")
        .join_both("TEACHES", "cid", "COURSE", "cid", 1.0, 0.9)
        .expect("valid edge")
        .join_both("ENROLLED", "sid", "STUDENT", "sid", 1.0, 0.75)
        .expect("valid edge")
        .join_both("ENROLLED", "cid", "COURSE", "cid", 1.0, 0.7)
        .expect("valid edge")
        .build()
        .expect("university graph is valid")
}

/// A small hand-crafted instance.
pub fn university_instance() -> Database {
    let mut db = Database::new(university_schema()).expect("valid schema");
    let ins = |db: &mut Database, rel: &str, vals: Vec<Value>| {
        db.insert(rel, vals).expect("valid example tuple");
    };
    for (id, name, building) in [
        (1, "Computer Science", "Turing Hall"),
        (2, "Mathematics", "Noether Hall"),
    ] {
        ins(
            &mut db,
            "DEPARTMENT",
            vec![id.into(), name.into(), building.into()],
        );
    }
    for (id, name, title, dept) in [
        (1, "Ada Lovelace", "Professor", 1),
        (2, "Kurt Godel", "Associate Professor", 2),
    ] {
        ins(
            &mut db,
            "PROFESSOR",
            vec![id.into(), name.into(), title.into(), dept.into()],
        );
    }
    for (id, name, credits, dept) in [
        (1, "Analytical Engines", 6, 1),
        (2, "Incompleteness", 6, 2),
        (3, "Query Processing", 4, 1),
    ] {
        ins(
            &mut db,
            "COURSE",
            vec![id.into(), name.into(), Value::from(credits), dept.into()],
        );
    }
    for (id, prof, course, semester) in [(1, 1, 1, "2026S"), (2, 1, 3, "2026W"), (3, 2, 2, "2026S")]
    {
        ins(
            &mut db,
            "TEACHES",
            vec![id.into(), prof.into(), course.into(), semester.into()],
        );
    }
    for (id, name, year) in [(1, "Grace Hopper", 1928), (2, "Alan Turing", 1934)] {
        ins(
            &mut db,
            "STUDENT",
            vec![id.into(), name.into(), Value::from(year)],
        );
    }
    for (id, student, course, grade) in [(1, 1, 1, "A"), (2, 2, 1, "A"), (3, 2, 2, "B")] {
        ins(
            &mut db,
            "ENROLLED",
            vec![id.into(), student.into(), course.into(), grade.into()],
        );
    }
    debug_assert!(db.validate_foreign_keys().is_empty());
    db
}

/// Narrative vocabulary for the university domain. TEACHES and ENROLLED
/// have no heading attributes — they are transparent bridges, like CAST in
/// the movies schema.
pub fn university_vocabulary(schema: &DatabaseSchema) -> Vocabulary {
    let rel = |n: &str| schema.relation_id(n).expect("university relation");
    let attr = |n: &str, a: &str| {
        schema
            .relation(rel(n))
            .attr_position(a)
            .expect("university attribute")
    };
    let department = rel("DEPARTMENT");
    let professor = rel("PROFESSOR");
    let course = rel("COURSE");
    let teaches = rel("TEACHES");
    let student = rel("STUDENT");
    let enrolled = rel("ENROLLED");

    let mut v = Vocabulary::new();
    v.set_heading(department, attr("DEPARTMENT", "dname"));
    v.set_heading(professor, attr("PROFESSOR", "pname"));
    v.set_heading(course, attr("COURSE", "cname"));
    v.set_heading(student, attr("STUDENT", "sname"));

    v.define_macro(
        "COURSE_LIST",
        "[i<arityof(@CNAME)]{@CNAME[$i$], }[i=arityof(@CNAME)]{@CNAME[$i$].}",
    )
    .expect("valid macro");

    v.set_relation_clause(professor, "@PNAME is a @TITLE.")
        .expect("valid template");
    v.set_relation_clause(student, "@SNAME is a student.")
        .expect("valid template");
    v.set_relation_clause(course, "@CNAME is a course.")
        .expect("valid template");
    v.set_relation_clause(department, "@DNAME is a department.")
        .expect("valid template");

    v.set_join_clause(
        professor,
        department,
        "@PNAME works in the @DNAME department.",
    )
    .expect("valid template");
    v.set_join_clause(teaches, course, "@PNAME teaches %COURSE_LIST%")
        .expect("valid template");
    v.set_join_clause(teaches, professor, "@CNAME is taught by @PNAME[*].")
        .expect("valid template");
    v.set_join_clause(
        course,
        department,
        "@CNAME is offered by the @DNAME department.",
    )
    .expect("valid template");
    v.set_join_clause(enrolled, course, "@SNAME is enrolled in %COURSE_LIST%")
        .expect("valid template");
    v.set_join_clause(enrolled, student, "@CNAME is taken by @SNAME[*].")
        .expect("valid template");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_graph_and_instance_are_consistent() {
        let s = university_schema();
        assert_eq!(s.relation_count(), 6);
        assert_eq!(s.foreign_keys().len(), 6);
        let g = university_graph();
        assert_eq!(g.join_edges().len(), 12);
        assert_eq!(g.projection_edges().len(), 10);
        let db = university_instance();
        assert!(db.validate_foreign_keys().is_empty());
        assert_eq!(db.total_tuples(), 2 + 2 + 3 + 3 + 2 + 3);
    }

    #[test]
    fn vocabulary_marks_bridges() {
        let s = university_schema();
        let v = university_vocabulary(&s);
        assert!(v.heading(s.relation_id("TEACHES").unwrap()).is_none());
        assert!(v.heading(s.relation_id("ENROLLED").unwrap()).is_none());
        assert!(v.heading(s.relation_id("PROFESSOR").unwrap()).is_some());
    }
}
