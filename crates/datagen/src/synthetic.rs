//! Seeded synthetic population of the movies schema at configurable scale —
//! the stand-in for the paper's IMDB dump ("over 34,000 films").

use crate::movies::movies_schema;
use crate::zipf::Zipf;
use precis_storage::{Database, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GENRES: &[&str] = &[
    "Comedy",
    "Drama",
    "Thriller",
    "Romance",
    "Action",
    "Horror",
    "Sci-Fi",
    "Documentary",
    "Animation",
    "Crime",
    "Western",
    "Musical",
];

const CITIES: &[&str] = &[
    "Brooklyn, New York, USA",
    "London, UK",
    "Paris, France",
    "Athens, Greece",
    "Rome, Italy",
    "Berlin, Germany",
    "Tokyo, Japan",
    "Sydney, Australia",
    "Toronto, Canada",
    "Madrid, Spain",
];

const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

const SYLLABLES: &[&str] = &[
    "an", "bel", "cor", "dan", "el", "far", "gol", "han", "il", "jor", "kal", "lor", "mar", "nor",
    "or", "pal", "quin", "ros", "sel", "tor", "ul", "van", "wil", "xen", "yor", "zan",
];

const TITLE_ADJECTIVES: &[&str] = &[
    "Silent", "Crimson", "Last", "Hidden", "Broken", "Golden", "Endless", "Midnight", "Lost",
    "Burning", "Distant", "Frozen", "Savage", "Gentle", "Electric",
];

const TITLE_NOUNS: &[&str] = &[
    "Point", "Garden", "Horizon", "Scorpion", "Ending", "Whisper", "Harbor", "Mirror", "Empire",
    "River", "Shadow", "Letter", "Voyage", "Crown", "Paradox",
];

/// Scale and skew knobs for [`MoviesGenerator`].
#[derive(Debug, Clone)]
pub struct MoviesConfig {
    pub movies: usize,
    pub directors: usize,
    pub actors: usize,
    pub theatres: usize,
    /// Genres drawn per movie (distinct, capped by the genre list).
    pub genres_per_movie: usize,
    /// Cast entries per movie.
    pub cast_per_movie: usize,
    /// Total screening rows.
    pub plays: usize,
    /// Skew of the director/actor/movie popularity distributions.
    pub zipf_exponent: f64,
    pub seed: u64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        MoviesConfig {
            movies: 2_000,
            directors: 300,
            actors: 1_500,
            theatres: 50,
            genres_per_movie: 2,
            cast_per_movie: 3,
            plays: 3_000,
            zipf_exponent: 1.05,
            seed: 0xC0FFEE,
        }
    }
}

impl MoviesConfig {
    /// Roughly the paper's IMDB scale (34k films). Takes a few seconds to
    /// generate; meant for benches, not unit tests.
    pub fn imdb_scale() -> Self {
        MoviesConfig {
            movies: 34_000,
            directors: 4_000,
            actors: 20_000,
            theatres: 500,
            genres_per_movie: 2,
            cast_per_movie: 4,
            plays: 50_000,
            ..MoviesConfig::default()
        }
    }
}

/// Deterministic generator of movies databases.
#[derive(Debug)]
pub struct MoviesGenerator {
    config: MoviesConfig,
    rng: StdRng,
}

impl MoviesGenerator {
    pub fn new(config: MoviesConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        MoviesGenerator { config, rng }
    }

    /// Generate the database. Same config (incl. seed) → same database.
    pub fn generate(mut self) -> Database {
        let mut db = Database::new(movies_schema()).expect("valid schema");
        let c = self.config.clone();

        for did in 1..=c.directors {
            let row = vec![
                Value::from(did),
                Value::from(self.person_name()),
                Value::from(self.city()),
                Value::from(self.birth_date()),
            ];
            db.insert("DIRECTOR", row).expect("unique did");
        }
        for aid in 1..=c.actors {
            let row = vec![
                Value::from(aid),
                Value::from(self.person_name()),
                Value::from(self.city()),
                Value::from(self.birth_date()),
            ];
            db.insert("ACTOR", row).expect("unique aid");
        }
        for tid in 1..=c.theatres {
            let row = vec![
                Value::from(tid),
                Value::from(format!("{} Theatre", self.capitalized_word())),
                Value::from(format!("210-{:04}", self.rng.gen_range(0..10_000))),
                Value::from(self.city()),
            ];
            db.insert("THEATRE", row).expect("unique tid");
        }

        let director_zipf = Zipf::new(c.directors.max(1), c.zipf_exponent);
        for mid in 1..=c.movies {
            let row = vec![
                Value::from(mid),
                Value::from(self.movie_title(mid)),
                Value::from(self.rng.gen_range(1950..=2026) as i64),
                Value::from(director_zipf.sample(&mut self.rng)),
            ];
            db.insert("MOVIE", row).expect("unique mid");
        }

        let mut gid = 0usize;
        for mid in 1..=c.movies {
            let k = c.genres_per_movie.min(GENRES.len());
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            while chosen.len() < k {
                let g = self.rng.gen_range(0..GENRES.len());
                if !chosen.contains(&g) {
                    chosen.push(g);
                }
            }
            for g in chosen {
                gid += 1;
                db.insert(
                    "GENRE",
                    vec![Value::from(gid), Value::from(mid), Value::from(GENRES[g])],
                )
                .expect("unique gid");
            }
        }

        let actor_zipf = Zipf::new(c.actors.max(1), c.zipf_exponent);
        let mut cid = 0usize;
        for mid in 1..=c.movies {
            for _ in 0..c.cast_per_movie {
                cid += 1;
                let row = vec![
                    Value::from(cid),
                    Value::from(mid),
                    Value::from(actor_zipf.sample(&mut self.rng)),
                    Value::from(self.capitalized_word()),
                ];
                db.insert("CAST", row).expect("unique cid");
            }
        }

        let movie_zipf = Zipf::new(c.movies.max(1), c.zipf_exponent);
        for pid in 1..=c.plays {
            let row = vec![
                Value::from(pid),
                Value::from(self.rng.gen_range(1..=c.theatres.max(1))),
                Value::from(movie_zipf.sample(&mut self.rng)),
                Value::from(format!(
                    "2026-{:02}-{:02}",
                    self.rng.gen_range(1..=12),
                    self.rng.gen_range(1..=28)
                )),
            ];
            db.insert("PLAY", row).expect("unique pid");
        }

        db
    }

    fn capitalized_word(&mut self) -> String {
        let syllables = self.rng.gen_range(2..=3);
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(SYLLABLES[self.rng.gen_range(0..SYLLABLES.len())]);
        }
        let mut chars = s.chars();
        match chars.next() {
            Some(f) => f.to_uppercase().collect::<String>() + chars.as_str(),
            None => s,
        }
    }

    fn person_name(&mut self) -> String {
        format!("{} {}", self.capitalized_word(), self.capitalized_word())
    }

    fn city(&mut self) -> String {
        CITIES[self.rng.gen_range(0..CITIES.len())].to_owned()
    }

    fn birth_date(&mut self) -> String {
        format!(
            "{} {}, {}",
            MONTHS[self.rng.gen_range(0..MONTHS.len())],
            self.rng.gen_range(1..=28),
            self.rng.gen_range(1930..=2000)
        )
    }

    /// Titles carry their id so every movie is findable by a unique token.
    fn movie_title(&mut self, mid: usize) -> String {
        format!(
            "The {} {} {mid}",
            TITLE_ADJECTIVES[self.rng.gen_range(0..TITLE_ADJECTIVES.len())],
            TITLE_NOUNS[self.rng.gen_range(0..TITLE_NOUNS.len())],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MoviesConfig {
        MoviesConfig {
            movies: 100,
            directors: 20,
            actors: 60,
            theatres: 5,
            plays: 150,
            seed: 11,
            ..MoviesConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MoviesGenerator::new(small()).generate();
        let b = MoviesGenerator::new(small()).generate();
        assert_eq!(a.total_tuples(), b.total_tuples());
        let movie = a.schema().relation_id("MOVIE").unwrap();
        for (tid, t) in a.table(movie).iter() {
            assert_eq!(b.table(movie).get(tid).unwrap(), t);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MoviesGenerator::new(small()).generate();
        let b = MoviesGenerator::new(MoviesConfig {
            seed: 12,
            ..small()
        })
        .generate();
        let movie = a.schema().relation_id("MOVIE").unwrap();
        let differs = a
            .table(movie)
            .iter()
            .any(|(tid, t)| b.table(movie).get(tid) != Some(t));
        assert!(differs);
    }

    #[test]
    fn cardinalities_match_config() {
        let db = MoviesGenerator::new(small()).generate();
        let s = db.schema();
        assert_eq!(db.len(s.relation_id("MOVIE").unwrap()), 100);
        assert_eq!(db.len(s.relation_id("DIRECTOR").unwrap()), 20);
        assert_eq!(db.len(s.relation_id("GENRE").unwrap()), 200);
        assert_eq!(db.len(s.relation_id("CAST").unwrap()), 300);
        assert_eq!(db.len(s.relation_id("PLAY").unwrap()), 150);
    }

    #[test]
    fn referential_integrity_holds() {
        let db = MoviesGenerator::new(small()).generate();
        assert!(db.validate_foreign_keys().is_empty());
    }

    #[test]
    fn director_fanout_is_skewed() {
        let db = MoviesGenerator::new(MoviesConfig {
            movies: 1000,
            directors: 100,
            actors: 50,
            theatres: 3,
            plays: 10,
            seed: 5,
            ..MoviesConfig::default()
        })
        .generate();
        let movie = db.schema().relation_id("MOVIE").unwrap();
        let did = db.relation_schema(movie).attr_position("did").unwrap();
        let mut counts = std::collections::HashMap::new();
        for (_, t) in db.table(movie).iter() {
            *counts.entry(t.get(did).as_int().unwrap()).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max >= 30, "top director should dominate: {max}");
    }

    #[test]
    fn titles_embed_unique_token() {
        let db = MoviesGenerator::new(small()).generate();
        let movie = db.schema().relation_id("MOVIE").unwrap();
        let (_, t) = db.table(movie).iter().next().unwrap();
        assert!(t.get(1).as_text().unwrap().ends_with(" 1"));
    }
}
