//! Seeded random weight sets over schema graphs — the paper's evaluation
//! "used 20 randomly generated sets of weights for the edges of the database
//! schema graph".

use precis_graph::SchemaGraph;
use rand::Rng;

/// A copy of `base` with every edge weight drawn uniformly from
/// `[0.05, 1.0]` (never 0, so no edge is structurally dead).
pub fn random_weight_graph(base: &SchemaGraph, rng: &mut impl Rng) -> SchemaGraph {
    base.map_weights(|_, _| rng.gen_range(0.05..=1.0))
        .expect("weights drawn in range")
}

/// `count` independent random-weight variants of `base`.
pub fn random_weight_graphs(
    base: &SchemaGraph,
    rng: &mut impl Rng,
    count: usize,
) -> Vec<SchemaGraph> {
    (0..count).map(|_| random_weight_graph(base, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::movies_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_randomized_in_range() {
        let base = movies_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_weight_graph(&base, &mut rng);
        let mut any_changed = false;
        for (a, b) in base.join_edges().iter().zip(g.join_edges()) {
            assert!((0.05..=1.0).contains(&b.weight));
            if (a.weight - b.weight).abs() > 1e-9 {
                any_changed = true;
            }
        }
        assert!(any_changed);
        // Same topology.
        assert_eq!(base.join_edges().len(), g.join_edges().len());
        assert_eq!(base.projection_edges().len(), g.projection_edges().len());
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let base = movies_graph();
        let g1 = random_weight_graph(&base, &mut StdRng::seed_from_u64(9));
        let g2 = random_weight_graph(&base, &mut StdRng::seed_from_u64(9));
        for (a, b) in g1.join_edges().iter().zip(g2.join_edges()) {
            assert_eq!(a.weight, b.weight);
        }
        let batch = random_weight_graphs(&base, &mut StdRng::seed_from_u64(9), 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].join_edges()[0].weight, g1.join_edges()[0].weight);
    }
}
