//! Synthetic database schemas for stress-testing the Result Schema
//! Generator at large degrees (Figure 7 sweeps `d` well beyond the 14
//! projections of the movies schema) and for the controlled (c_R, n_R)
//! sweeps of Figures 8–9.

use precis_graph::SchemaGraph;
use precis_storage::{DataType, Database, DatabaseSchema, ForeignKey, RelationSchema, Value};

fn relation(name: &str, payload_attrs: usize, fk_to: Option<&str>) -> RelationSchema {
    let mut b = RelationSchema::builder(name)
        .attr_not_null("id", DataType::Int)
        .primary_key("id");
    if let Some(parent) = fk_to {
        b = b.attr(format!("{}_id", parent.to_lowercase()), DataType::Int);
    }
    for i in 0..payload_attrs {
        b = b.attr(format!("a{i}"), DataType::Text);
    }
    b.build().expect("valid synthetic relation")
}

fn link(s: &mut DatabaseSchema, child: &str, parent: &str) {
    s.add_foreign_key(ForeignKey::new(
        child,
        format!("{}_id", parent.to_lowercase()),
        parent,
        "id",
    ))
    .expect("valid synthetic fk");
}

/// A chain `R0 ← R1 ← … ← R(n−1)` (each relation references the previous),
/// with `payload_attrs` text attributes per relation.
pub fn chain_schema(n: usize, payload_attrs: usize) -> DatabaseSchema {
    assert!(n >= 1);
    let mut s = DatabaseSchema::new(format!("chain{n}"));
    s.add_relation(relation("R0", payload_attrs, None))
        .expect("unique name");
    for i in 1..n {
        let parent = format!("R{}", i - 1);
        let name = format!("R{i}");
        s.add_relation(relation(&name, payload_attrs, Some(&parent)))
            .expect("unique name");
        link(&mut s, &name, &parent);
    }
    s
}

/// A star: `n − 1` spokes each referencing the hub `R0`.
pub fn star_schema(n: usize, payload_attrs: usize) -> DatabaseSchema {
    assert!(n >= 1);
    let mut s = DatabaseSchema::new(format!("star{n}"));
    s.add_relation(relation("R0", payload_attrs, None))
        .expect("unique name");
    for i in 1..n {
        let name = format!("R{i}");
        s.add_relation(relation(&name, payload_attrs, Some("R0")))
            .expect("unique name");
        link(&mut s, &name, "R0");
    }
    s
}

/// A complete-ish tree with the given fanout: relation `Ri` references its
/// parent `R((i−1)/fanout)`.
pub fn tree_schema(n: usize, fanout: usize, payload_attrs: usize) -> DatabaseSchema {
    assert!(n >= 1 && fanout >= 1);
    let mut s = DatabaseSchema::new(format!("tree{n}x{fanout}"));
    s.add_relation(relation("R0", payload_attrs, None))
        .expect("unique name");
    for i in 1..n {
        let parent = format!("R{}", (i - 1) / fanout);
        let name = format!("R{i}");
        s.add_relation(relation(&name, payload_attrs, Some(&parent)))
            .expect("unique name");
        link(&mut s, &name, &parent);
    }
    s
}

/// A layered schema: `layers` layers of `width` relations each, every
/// relation referencing *every* relation of the previous layer. The number
/// of distinct paths between the first and last layers grows as
/// `width^(layers-1)` — the worst case for path-enumerating traversals and
/// the motivating topology for the optimized schema generator.
pub fn layered_schema(layers: usize, width: usize, payload_attrs: usize) -> DatabaseSchema {
    assert!(layers >= 1 && width >= 1);
    let mut s = DatabaseSchema::new(format!("layers{layers}x{width}"));
    for layer in 0..layers {
        for j in 0..width {
            let name = format!("L{layer}_{j}");
            let mut b = RelationSchema::builder(&name)
                .attr_not_null("id", DataType::Int)
                .primary_key("id");
            if layer > 0 {
                for p in 0..width {
                    b = b.attr(format!("p{p}_id"), DataType::Int);
                }
            }
            for i in 0..payload_attrs {
                b = b.attr(format!("a{i}"), DataType::Text);
            }
            s.add_relation(b.build().expect("valid layered relation"))
                .expect("unique name");
        }
    }
    for layer in 1..layers {
        for j in 0..width {
            for p in 0..width {
                s.add_foreign_key(ForeignKey::new(
                    format!("L{layer}_{j}"),
                    format!("p{p}_id"),
                    format!("L{}_{p}", layer - 1),
                    "id",
                ))
                .expect("valid layered fk");
            }
        }
    }
    s
}

/// A populated chain database for controlled Result-Database-Generator
/// experiments: `n` relations, `rows` tuples each, tuple `row` of a
/// non-root relation referencing parent id `row` (a 1-to-1 join), all join
/// weights 1.
///
/// Each `R0` payload attribute `a0` carries the findable token `seedK`.
pub fn chain_db(n: usize, rows: usize, seed: u64) -> (Database, SchemaGraph) {
    chain_db_fanout(n, rows, 1, seed)
}

/// As [`chain_db`], but each join is 1-to-`fanout`: tuple `row` of a
/// non-root relation references parent `row % (rows / fanout)`, so every
/// referenced parent has exactly `fanout` children. Seed tuples for
/// retrieval experiments should be drawn from that leading id range (tids
/// `0..rows/fanout` of `R0`). The `seed` parameter is kept for signature
/// stability; population is fully deterministic.
pub fn chain_db_fanout(
    n: usize,
    rows: usize,
    fanout: usize,
    _seed: u64,
) -> (Database, SchemaGraph) {
    assert!(fanout >= 1, "fanout must be positive");
    let schema = chain_schema(n, 1);
    let graph =
        SchemaGraph::from_foreign_keys(schema.clone(), 1.0, 1.0, 1.0).expect("valid chain graph");
    let mut db = Database::new(schema).expect("valid chain schema");
    let parent_range = (rows / fanout).max(1);
    for row in 0..rows {
        db.insert(
            "R0",
            vec![Value::from(row), Value::from(format!("seed{row} payload"))],
        )
        .expect("unique id");
    }
    for i in 1..n {
        let name = format!("R{i}");
        for row in 0..rows {
            let parent = row % parent_range;
            db.insert(
                &name,
                vec![
                    Value::from(row),
                    Value::from(parent),
                    Value::from(format!("payload {row}")),
                ],
            )
            .expect("unique id");
        }
    }
    (db, graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links_consecutive_relations() {
        let s = chain_schema(4, 2);
        assert_eq!(s.relation_count(), 4);
        assert_eq!(s.foreign_keys().len(), 3);
        let fk = &s.foreign_keys()[0];
        assert_eq!(fk.relation, "R1");
        assert_eq!(fk.ref_relation, "R0");
        // id + fk + 2 payload.
        let r1 = s.relation(s.relation_id("R1").unwrap());
        assert_eq!(r1.arity(), 4);
        let r0 = s.relation(s.relation_id("R0").unwrap());
        assert_eq!(r0.arity(), 3);
    }

    #[test]
    fn star_links_spokes_to_hub() {
        let s = star_schema(5, 1);
        assert_eq!(s.foreign_keys().len(), 4);
        assert!(s.foreign_keys().iter().all(|fk| fk.ref_relation == "R0"));
    }

    #[test]
    fn tree_respects_fanout() {
        let s = tree_schema(7, 2, 1);
        assert_eq!(s.relation_count(), 7);
        let parents: Vec<&str> = s
            .foreign_keys()
            .iter()
            .map(|fk| fk.ref_relation.as_str())
            .collect();
        assert_eq!(parents, vec!["R0", "R0", "R1", "R1", "R2", "R2"]);
    }

    #[test]
    fn single_relation_schemas_work() {
        assert_eq!(chain_schema(1, 3).relation_count(), 1);
        assert_eq!(star_schema(1, 3).foreign_keys().len(), 0);
        assert_eq!(tree_schema(1, 2, 3).relation_count(), 1);
    }

    #[test]
    fn layered_schema_is_all_to_all_between_layers() {
        let s = layered_schema(3, 2, 1);
        assert_eq!(s.relation_count(), 6);
        // Layers 1 and 2 each contribute width^2 = 4 fks.
        assert_eq!(s.foreign_keys().len(), 8);
        let l1_0 = s.relation(s.relation_id("L1_0").unwrap());
        // id + 2 parent fks + 1 payload.
        assert_eq!(l1_0.arity(), 4);
        assert_eq!(layered_schema(1, 3, 0).foreign_keys().len(), 0);
    }

    #[test]
    fn chain_db_is_populated_and_consistent() {
        let (db, graph) = chain_db(4, 25, 9);
        assert_eq!(db.total_tuples(), 100);
        assert!(db.validate_foreign_keys().is_empty());
        assert_eq!(graph.join_edges().len(), 6, "both directions per link");
        // Deterministic.
        let (db2, _) = chain_db(4, 25, 9);
        assert_eq!(db2.total_tuples(), db.total_tuples());
        let r1 = db.schema().relation_id("R1").unwrap();
        for (tid, t) in db.table(r1).iter() {
            assert_eq!(db2.table(r1).get(tid).unwrap(), t);
        }
    }
}
