//! The paper's movies database (Figure 1) and running example (§5).
//!
//! Schema (primary keys underlined in the paper; bridge relations get
//! surrogate keys because the storage engine follows the paper's
//! simplifying assumption of non-composite primary keys):
//!
//! ```text
//! THEATRE(tid, name, phone, region)    PLAY(pid, tid, mid, date)
//! MOVIE(mid, title, year, did)         GENRE(gid, mid, genre)
//! CAST(cid, mid, aid, role)            ACTOR(aid, aname, blocation, bdate)
//! DIRECTOR(did, dname, blocation, bdate)
//! ```

use precis_graph::SchemaGraph;
use precis_nlg::Vocabulary;
use precis_storage::{DataType, Database, DatabaseSchema, ForeignKey, RelationSchema, Value};

/// Build the movies database schema of Figure 1.
pub fn movies_schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("movies");
    let add = |s: &mut DatabaseSchema, r: RelationSchema| {
        s.add_relation(r).expect("unique relation names");
    };
    add(
        &mut s,
        RelationSchema::builder("THEATRE")
            .attr_not_null("tid", DataType::Int)
            .attr("name", DataType::Text)
            .attr("phone", DataType::Text)
            .attr("region", DataType::Text)
            .primary_key("tid")
            .build()
            .expect("valid THEATRE schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("PLAY")
            .attr_not_null("pid", DataType::Int)
            .attr("tid", DataType::Int)
            .attr("mid", DataType::Int)
            .attr("date", DataType::Text)
            .primary_key("pid")
            .build()
            .expect("valid PLAY schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("MOVIE")
            .attr_not_null("mid", DataType::Int)
            .attr("title", DataType::Text)
            .attr("year", DataType::Int)
            .attr("did", DataType::Int)
            .primary_key("mid")
            .build()
            .expect("valid MOVIE schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("GENRE")
            .attr_not_null("gid", DataType::Int)
            .attr("mid", DataType::Int)
            .attr("genre", DataType::Text)
            .primary_key("gid")
            .build()
            .expect("valid GENRE schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("CAST")
            .attr_not_null("cid", DataType::Int)
            .attr("mid", DataType::Int)
            .attr("aid", DataType::Int)
            .attr("role", DataType::Text)
            .primary_key("cid")
            .build()
            .expect("valid CAST schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("ACTOR")
            .attr_not_null("aid", DataType::Int)
            .attr("aname", DataType::Text)
            .attr("blocation", DataType::Text)
            .attr("bdate", DataType::Text)
            .primary_key("aid")
            .build()
            .expect("valid ACTOR schema"),
    );
    add(
        &mut s,
        RelationSchema::builder("DIRECTOR")
            .attr_not_null("did", DataType::Int)
            .attr("dname", DataType::Text)
            .attr("blocation", DataType::Text)
            .attr("bdate", DataType::Text)
            .primary_key("did")
            .build()
            .expect("valid DIRECTOR schema"),
    );
    for (rel, attr, to, to_attr) in [
        ("PLAY", "tid", "THEATRE", "tid"),
        ("PLAY", "mid", "MOVIE", "mid"),
        ("GENRE", "mid", "MOVIE", "mid"),
        ("CAST", "mid", "MOVIE", "mid"),
        ("CAST", "aid", "ACTOR", "aid"),
        ("MOVIE", "did", "DIRECTOR", "did"),
    ] {
        s.add_foreign_key(ForeignKey::new(rel, attr, to, to_attr))
            .expect("valid foreign keys");
    }
    s
}

/// The weighted schema graph of Figure 1.
///
/// Weights follow the figure where legible (e.g. GENRE→MOVIE = 1, MOVIE→GENRE
/// = 0.9, MOVIE→DIRECTOR = 0.89 per the §3.1 discussion) and sensible
/// defaults elsewhere; DESIGN.md records the full assignment. Pure id
/// attributes get no projection edges — they surface in results only as join
/// attributes or primary keys.
pub fn movies_graph() -> SchemaGraph {
    SchemaGraph::builder(movies_schema())
        .projection("THEATRE", "name", 1.0)
        .expect("valid edge")
        .projection("THEATRE", "phone", 0.8)
        .expect("valid edge")
        .projection("THEATRE", "region", 0.7)
        .expect("valid edge")
        .projection("PLAY", "date", 0.6)
        .expect("valid edge")
        .projection("MOVIE", "title", 1.0)
        .expect("valid edge")
        .projection("MOVIE", "year", 0.9)
        .expect("valid edge")
        .projection("GENRE", "genre", 1.0)
        .expect("valid edge")
        .projection("CAST", "role", 0.3)
        .expect("valid edge")
        .projection("ACTOR", "aname", 1.0)
        .expect("valid edge")
        .projection("ACTOR", "blocation", 0.9)
        .expect("valid edge")
        .projection("ACTOR", "bdate", 0.9)
        .expect("valid edge")
        .projection("DIRECTOR", "dname", 1.0)
        .expect("valid edge")
        .projection("DIRECTOR", "blocation", 0.9)
        .expect("valid edge")
        .projection("DIRECTOR", "bdate", 0.9)
        .expect("valid edge")
        .join_both("PLAY", "tid", "THEATRE", "tid", 1.0, 0.3)
        .expect("valid edge")
        .join_both("PLAY", "mid", "MOVIE", "mid", 1.0, 0.3)
        .expect("valid edge")
        .join_both("GENRE", "mid", "MOVIE", "mid", 1.0, 0.9)
        .expect("valid edge")
        .join_both("CAST", "mid", "MOVIE", "mid", 1.0, 0.7)
        .expect("valid edge")
        .join_both("CAST", "aid", "ACTOR", "aid", 1.0, 0.95)
        .expect("valid edge")
        .join_both("MOVIE", "did", "DIRECTOR", "did", 0.89, 1.0)
        .expect("valid edge")
        .build()
        .expect("figure 1 graph is valid")
}

/// The hand-crafted instance behind the paper's running example: Woody Allen
/// as a director of three films (with genres) and as an actor in two more.
pub fn woody_allen_instance() -> Database {
    let mut db = Database::new(movies_schema()).expect("valid schema");
    let ins = |db: &mut Database, rel: &str, vals: Vec<Value>| {
        db.insert(rel, vals).expect("valid example tuple");
    };

    ins(
        &mut db,
        "DIRECTOR",
        vec![
            1.into(),
            "Woody Allen".into(),
            "Brooklyn, New York, USA".into(),
            "December 1, 1935".into(),
        ],
    );
    ins(
        &mut db,
        "DIRECTOR",
        vec![
            2.into(),
            "Alfred Other".into(),
            "London, UK".into(),
            "March 2, 1940".into(),
        ],
    );

    // (mid, title, year, did) — the three directed films first, newest
    // first, matching the paper's listing order.
    for (mid, title, year, did) in [
        (1, "Match Point", 2005, 1),
        (2, "Melinda and Melinda", 2004, 1),
        (3, "Anything Else", 2003, 1),
        (4, "Hollywood Ending", 2002, 2),
        (5, "The Curse of the Jade Scorpion", 2001, 2),
    ] {
        ins(
            &mut db,
            "MOVIE",
            vec![mid.into(), title.into(), year.into(), did.into()],
        );
    }

    for (gid, mid, genre) in [
        (1, 1, "Drama"),
        (2, 1, "Thriller"),
        (3, 2, "Comedy"),
        (4, 2, "Drama"),
        (5, 3, "Comedy"),
        (6, 3, "Romance"),
        (7, 4, "Comedy"),
        (8, 5, "Comedy"),
    ] {
        ins(&mut db, "GENRE", vec![gid.into(), mid.into(), genre.into()]);
    }

    ins(
        &mut db,
        "ACTOR",
        vec![
            1.into(),
            "Woody Allen".into(),
            "Brooklyn, New York, USA".into(),
            "December 1, 1935".into(),
        ],
    );
    ins(
        &mut db,
        "ACTOR",
        vec![
            2.into(),
            "Scarlett Johansson".into(),
            "New York, USA".into(),
            "November 22, 1984".into(),
        ],
    );

    // Woody Allen acts in the two films he did not direct here.
    for (cid, mid, aid, role) in [
        (1, 4, 1, "Val Waxman"),
        (2, 5, 1, "C.W. Briggs"),
        (3, 1, 2, "Nola Rice"),
    ] {
        ins(
            &mut db,
            "CAST",
            vec![cid.into(), mid.into(), aid.into(), role.into()],
        );
    }

    for (tid, name, phone, region) in [
        (1, "Odeon", "210-1111", "Downtown"),
        (2, "Rex", "210-2222", "Uptown"),
    ] {
        ins(
            &mut db,
            "THEATRE",
            vec![tid.into(), name.into(), phone.into(), region.into()],
        );
    }
    for (pid, tid, mid, date) in [(1, 1, 1, "2026-07-01"), (2, 2, 4, "2026-07-02")] {
        ins(
            &mut db,
            "PLAY",
            vec![pid.into(), tid.into(), mid.into(), date.into()],
        );
    }
    debug_assert!(db.validate_foreign_keys().is_empty());
    db
}

/// The designer vocabulary that renders the §5.3 narrative.
///
/// Heading attributes: THEATRE.name, MOVIE.title, GENRE.genre, ACTOR.aname,
/// DIRECTOR.dname. PLAY and CAST have none — they are transparent bridges,
/// and the labels of joins through them "signify the relationship between
/// the previous and subsequent relations".
pub fn movies_vocabulary(schema: &DatabaseSchema) -> Vocabulary {
    let rel = |name: &str| schema.relation_id(name).expect("movies relation");
    let attr = |name: &str, a: &str| {
        schema
            .relation(rel(name))
            .attr_position(a)
            .expect("movies attribute")
    };
    let theatre = rel("THEATRE");
    let movie = rel("MOVIE");
    let genre = rel("GENRE");
    let cast = rel("CAST");
    let actor = rel("ACTOR");
    let director = rel("DIRECTOR");
    let play = rel("PLAY");

    let mut v = Vocabulary::new();
    v.set_heading(theatre, attr("THEATRE", "name"));
    v.set_heading(movie, attr("MOVIE", "title"));
    v.set_heading(genre, attr("GENRE", "genre"));
    v.set_heading(actor, attr("ACTOR", "aname"));
    v.set_heading(director, attr("DIRECTOR", "dname"));

    v.define_macro(
        "MOVIE_LIST",
        "[i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }[i=arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]).}",
    )
    .expect("valid macro");

    v.set_relation_clause(director, "@DNAME was born on @BDATE in @BLOCATION.")
        .expect("valid template");
    v.set_relation_clause(actor, "@ANAME was born on @BDATE in @BLOCATION.")
        .expect("valid template");
    v.set_relation_clause(movie, "@TITLE (@YEAR) is a movie.")
        .expect("valid template");
    v.set_relation_clause(
        theatre,
        "@NAME is a theatre in the @REGION region (phone @PHONE).",
    )
    .expect("valid template");
    v.set_relation_clause(genre, "@GENRE is a genre.")
        .expect("valid template");

    v.set_join_clause(
        director,
        movie,
        "As a director, @DNAME's work includes %MOVIE_LIST%",
    )
    .expect("valid template");
    v.set_join_clause(
        cast,
        movie,
        "As an actor, @ANAME's work includes %MOVIE_LIST%",
    )
    .expect("valid template");
    v.set_join_clause(movie, genre, "@TITLE is @GENRE[*].")
        .expect("valid template");
    v.set_join_clause(genre, movie, "@GENRE movies include %MOVIE_LIST%")
        .expect("valid template");
    v.set_join_clause(movie, director, "@TITLE was directed by @DNAME[*].")
        .expect("valid template");
    v.set_join_clause(cast, actor, "@TITLE stars @ANAME[*].")
        .expect("valid template");
    v.set_join_clause(play, movie, "@NAME is playing @TITLE[*].")
        .expect("valid template");
    v.set_join_clause(play, theatre, "@TITLE is playing at @NAME[*].")
        .expect("valid template");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_seven_relations_and_six_fks() {
        let s = movies_schema();
        assert_eq!(s.relation_count(), 7);
        assert_eq!(s.foreign_keys().len(), 6);
        for name in [
            "THEATRE", "PLAY", "MOVIE", "GENRE", "CAST", "ACTOR", "DIRECTOR",
        ] {
            assert!(s.relation_id(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn graph_matches_figure_1_weights() {
        let g = movies_graph();
        let s = g.schema();
        let genre = s.relation_id("GENRE").unwrap();
        let movie = s.relation_id("MOVIE").unwrap();
        let director = s.relation_id("DIRECTOR").unwrap();
        // "the weight of the edge from GENRE to MOVIE is 1, while the weight
        // of the edge from MOVIE to GENRE is .9" (§3.1).
        assert_eq!(g.join_edge(g.find_join(genre, movie).unwrap()).weight, 1.0);
        assert_eq!(g.join_edge(g.find_join(movie, genre).unwrap()).weight, 0.9);
        assert_eq!(
            g.join_edge(g.find_join(movie, director).unwrap()).weight,
            0.89
        );
        assert_eq!(g.join_edges().len(), 12);
        assert_eq!(g.projection_edges().len(), 14);
    }

    #[test]
    fn instance_is_consistent_and_complete() {
        let db = woody_allen_instance();
        assert!(db.validate_foreign_keys().is_empty());
        assert_eq!(db.total_tuples(), 2 + 5 + 8 + 2 + 3 + 2 + 2);
        let movie = db.schema().relation_id("MOVIE").unwrap();
        assert_eq!(db.len(movie), 5);
    }

    #[test]
    fn weight_transfer_example_from_paper() {
        // §3.2: "the weight of the projection of PHONE over THEATRE equals
        // .8, while its weight with respect to MOVIE is .7 × 1 × .8 = .56"
        // — MOVIE →(0.3) PLAY →(1.0) THEATRE ×(0.8) phone in our graph is
        // .3 × 1 × .8 = .24 with the figure's legible weights; verify the
        // multiplicative transfer itself.
        use precis_graph::Path;
        let g = movies_graph();
        let s = g.schema();
        let movie = s.relation_id("MOVIE").unwrap();
        let play = s.relation_id("PLAY").unwrap();
        let theatre = s.relation_id("THEATRE").unwrap();
        let phone = s.relation(theatre).attr_position("phone").unwrap();
        let p = Path::seed(movie)
            .extend_join(&g, g.find_join(movie, play).unwrap())
            .unwrap()
            .extend_join(&g, g.find_join(play, theatre).unwrap())
            .unwrap()
            .extend_projection(&g, g.find_projection(theatre, phone).unwrap())
            .unwrap();
        let expected = g.join_edge(g.find_join(movie, play).unwrap()).weight
            * g.join_edge(g.find_join(play, theatre).unwrap()).weight
            * 0.8;
        assert!((p.weight() - expected).abs() < 1e-12);
    }

    #[test]
    fn vocabulary_covers_the_narrative_relations() {
        let s = movies_schema();
        let v = movies_vocabulary(&s);
        let director = s.relation_id("DIRECTOR").unwrap();
        let cast = s.relation_id("CAST").unwrap();
        let play = s.relation_id("PLAY").unwrap();
        let movie = s.relation_id("MOVIE").unwrap();
        assert!(v.heading(director).is_some());
        assert!(v.heading(cast).is_none(), "CAST is a transparent bridge");
        assert!(v.heading(play).is_none(), "PLAY is a transparent bridge");
        assert!(v.relation_clause(director).is_some());
        assert!(v.join_clause(director, movie).is_some());
        assert!(v.macros().contains_key("MOVIE_LIST"));
    }
}
