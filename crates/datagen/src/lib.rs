//! # precis-datagen
//!
//! Datasets for the Précis reproduction:
//!
//! * [`movies`] — the paper's movies schema (Figure 1), its weighted schema
//!   graph, the hand-crafted Woody Allen instance behind the running
//!   example, and the NLG vocabulary that reproduces the §5.3 narrative;
//! * [`synthetic`] — a seeded, scalable generator of IMDB-like movie data
//!   (the paper evaluated on an IMDB dump of 34k+ films, which we simulate);
//! * [`schemas`] — synthetic database schemas (chains, stars, trees) for
//!   stress-testing the Result Schema Generator at large degrees;
//! * [`weights`] — seeded random weight sets over any schema graph (the
//!   paper's "20 randomly generated sets of weights").

pub mod movies;
pub mod schemas;
pub mod synthetic;
pub mod university;
pub mod weights;
mod zipf;

pub use movies::{movies_graph, movies_schema, movies_vocabulary, woody_allen_instance};
pub use schemas::{
    chain_db, chain_db_fanout, chain_schema, layered_schema, star_schema, tree_schema,
};
pub use synthetic::{MoviesConfig, MoviesGenerator};
pub use university::{
    university_graph, university_instance, university_schema, university_vocabulary,
};
pub use weights::{random_weight_graph, random_weight_graphs};
pub use zipf::Zipf;
