//! A small Zipf sampler for skewed fan-outs (real movie data is heavily
//! skewed: a few directors with many films, a long tail with one).

use rand::Rng;

/// Zipf distribution over `1..=n` with exponent `s`: value `k` has
/// probability proportional to `1 / k^s`. Sampling is O(log n) via binary
/// search over precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `1..=n`. `n` must be ≥ 1; `s` ≥ 0 (s = 0 is
    /// uniform).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one outcome");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Sample a value in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    pub fn n(&self) -> usize {
        self.cumulative.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = z.sample(&mut rng);
            assert!((1..=10).contains(&v));
        }
        assert_eq!(z.n(), 10);
    }

    #[test]
    fn skew_prefers_small_values() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) <= 10 {
                low += 1;
            }
        }
        // With s = 1.2, the first 10 of 100 values carry well over half the
        // mass.
        assert!(low > n / 2, "low-range mass: {low}/{n}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for &c in &counts {
            assert!((1600..=2400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn zero_outcomes_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
