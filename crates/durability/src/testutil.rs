//! Shared helpers for the crate's tests: unique scratch directories (no
//! `tempfile` dependency) and a small movies database.

use precis_storage::{DataType, Database, DatabaseSchema, ForeignKey, RelationSchema, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh empty directory under the system temp dir, unique per call.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "precis-durability-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The schema used across the crate's tests: DIRECTOR ← MOVIE.
pub fn sample_schema() -> DatabaseSchema {
    let mut s = DatabaseSchema::new("movies db");
    s.add_relation(
        RelationSchema::builder("DIRECTOR")
            .attr_not_null("did", DataType::Int)
            .attr("dname", DataType::Text)
            .attr("rating", DataType::Float)
            .primary_key("did")
            .build()
            .unwrap(),
    )
    .unwrap();
    s.add_relation(
        RelationSchema::builder("MOVIE")
            .attr_not_null("mid", DataType::Int)
            .attr("title", DataType::Text)
            .attr("did", DataType::Int)
            .primary_key("mid")
            .build()
            .unwrap(),
    )
    .unwrap();
    s.add_foreign_key(ForeignKey::new("MOVIE", "did", "DIRECTOR", "did"))
        .unwrap();
    s
}

/// A populated sample database (two directors, one movie).
pub fn sample_db() -> Database {
    let mut db = Database::new(sample_schema()).unwrap();
    db.insert(
        "DIRECTOR",
        vec![
            Value::from(1),
            Value::from("Woody Allen"),
            Value::from(7.25),
        ],
    )
    .unwrap();
    db.insert(
        "DIRECTOR",
        vec![Value::from(2), Value::from("Sofia Coppola"), Value::Null],
    )
    .unwrap();
    db.insert(
        "MOVIE",
        vec![Value::from(10), Value::from("Match Point"), Value::from(1)],
    )
    .unwrap();
    db
}
