//! Crash recovery: load the latest snapshot, replay the WAL tail, and
//! truncate — never fail — at the first torn, corrupt, or misapplied
//! record.
//!
//! The contract is *ACK-after-fsync*: every mutation that was fsynced and
//! acknowledged survives recovery; an unacknowledged tail may be kept (if
//! the OS flushed it) or cut (if it tore). Because the log is applied
//! strictly in order and the snapshot records the first LSN it does *not*
//! cover, recovery is idempotent — crashing during recovery and recovering
//! again yields the identical database.

use crate::record::WalEntry;
use crate::snapshot::{load_snapshot, Snapshot};
use crate::store::{SNAPSHOT_FILE, WAL_FILE};
use crate::wal::read_one;
use precis_storage::{io, Database, Result, StorageError, WalOp};
use std::path::Path;

/// What recovery did, for logs and the server's `/metrics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The snapshot's `next_lsn`, when a snapshot was loaded.
    pub snapshot_lsn: Option<u64>,
    /// WAL records applied on top of the snapshot.
    pub replayed: usize,
    /// WAL records skipped because the snapshot already covered them
    /// (a crash landed between snapshot install and WAL rotation).
    pub skipped: usize,
    /// Why the log tail was cut, if it was.
    pub truncated: Option<String>,
    /// The LSN the reopened WAL should assign next.
    pub next_lsn: u64,
}

/// A recovered database plus the [`RecoveryReport`] describing how it was
/// reassembled.
#[derive(Debug)]
pub struct Recovered {
    pub db: Database,
    pub report: RecoveryReport,
}

/// Recover the store under `dir`. Returns `Ok(None)` when the directory
/// holds neither a snapshot nor any usable WAL record (a brand-new store).
/// A torn or corrupt WAL tail is physically truncated so the next append
/// extends a clean prefix.
pub fn recover(dir: impl AsRef<Path>) -> Result<Option<Recovered>> {
    let _span = precis_obs::span("wal.replay");
    let dir = dir.as_ref();
    let wal_path = dir.join(WAL_FILE);
    let snapshot = load_snapshot(dir.join(SNAPSHOT_FILE))?;
    let buf = match std::fs::read(&wal_path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StorageError::Io(format!("wal {}: {e}", wal_path.display()))),
    };

    let snapshot_lsn = snapshot.as_ref().map(|s| s.next_lsn);
    let (floor, mut db) = match snapshot {
        Some(Snapshot { db, next_lsn }) => (next_lsn, Some(db)),
        None => (0, None),
    };
    let mut next_lsn = floor;
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    let mut truncated = None;
    let mut offset = 0usize;
    loop {
        let (consumed, lsn, entry) = match read_one(&buf, offset) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e) => {
                truncated = Some(e.to_string());
                break;
            }
        };
        if lsn < floor {
            skipped += 1;
            offset += consumed;
            continue;
        }
        if let Err(e) = apply(&mut db, &entry) {
            // A record that decodes but does not apply means the log and
            // the snapshot disagree (e.g. an insert that would land on a
            // different tuple id). Serving the consistent prefix beats
            // refusing to start.
            truncated = Some(format!("record lsn {lsn}: {e}"));
            break;
        }
        replayed += 1;
        next_lsn = lsn + 1;
        offset += consumed;
    }

    if truncated.is_some() && (offset as u64) < buf.len() as u64 {
        truncate_file(&wal_path, offset as u64)?;
    }

    let report = RecoveryReport {
        snapshot_lsn,
        replayed,
        skipped,
        truncated,
        next_lsn,
    };
    Ok(db.map(|db| Recovered { db, report }))
}

/// Apply one WAL entry to the database being rebuilt. Insert replay
/// verifies the engine hands back the tuple id the record stored — the
/// snapshot-as-compaction-point protocol guarantees it, so a mismatch
/// means the files are inconsistent and the log must be cut here.
fn apply(db: &mut Option<Database>, entry: &WalEntry) -> Result<()> {
    match entry {
        WalEntry::SchemaInstall { schema_text } => {
            if db.is_some() {
                return Err(StorageError::Corrupt(
                    "schema install into a non-empty store".into(),
                ));
            }
            *db = Some(io::load_from_string(schema_text)?);
            Ok(())
        }
        WalEntry::Op(op) => {
            let db = db.as_mut().ok_or_else(|| {
                StorageError::Corrupt("mutation before any schema or snapshot".into())
            })?;
            match op {
                WalOp::Insert {
                    relation,
                    tid,
                    values,
                } => {
                    // Verify BEFORE mutating: inserts claim the next slot,
                    // so a mismatch is detectable up front and the database
                    // stays exactly at the consistent prefix.
                    let rel = db.schema().require_relation(relation)?;
                    let next = db.table(rel).slot_count() as u64;
                    if next != tid.0 {
                        return Err(StorageError::Corrupt(format!(
                            "insert into {relation} would land on tid {next} but the log says {}",
                            tid.0
                        )));
                    }
                    db.insert_into(rel, values.clone()).map(|_| ())
                }
                WalOp::Update {
                    relation,
                    tid,
                    values,
                } => {
                    let rel = db.schema().require_relation(relation)?;
                    db.update(rel, *tid, values.clone())
                }
                WalOp::Delete { relation, tid } => {
                    let rel = db.schema().require_relation(relation)?;
                    db.delete(rel, *tid)
                }
            }
        }
    }
}

fn truncate_file(path: &Path, len: u64) -> Result<()> {
    let io_err = |e: std::io::Error| StorageError::Io(format!("wal {}: {e}", path.display()));
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err)?;
    f.set_len(len).map_err(io_err)?;
    f.sync_data().map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::store::DurableStore;
    use crate::testutil::{sample_schema, scratch_dir};
    use crate::wal::{FsyncPolicy, SharedWal, Wal};
    use precis_storage::Value;
    use std::sync::Arc;

    /// Bootstrap a live database whose mutations stream into a fresh WAL
    /// under `dir`, starting from an empty schema-install record.
    fn live_db(dir: &Path) -> (Database, SharedWal) {
        let store = DurableStore::open(dir).unwrap();
        let empty = Database::new(sample_schema()).unwrap();
        let mut wal = store.create_wal(FsyncPolicy::Never, 0).unwrap();
        wal.append_schema_install(&io::dump_to_string(&empty))
            .unwrap();
        let shared = SharedWal::new(wal);
        let mut db = empty;
        db.set_wal_sink(Arc::new(shared.clone()));
        (db, shared)
    }

    fn populate(db: &mut Database) {
        db.insert(
            "DIRECTOR",
            vec![Value::from(1), Value::from("Allen"), Value::from(7.25)],
        )
        .unwrap();
        db.insert(
            "DIRECTOR",
            vec![Value::from(2), Value::from("Coppola"), Value::Null],
        )
        .unwrap();
        let movie = db.schema().relation_id("MOVIE").unwrap();
        let director = db.schema().relation_id("DIRECTOR").unwrap();
        let t10 = db
            .insert(
                "MOVIE",
                vec![Value::from(10), Value::from("Match Pont"), Value::from(1)],
            )
            .unwrap();
        // Fix the typo via update, then delete and re-add a director's movie.
        db.update(
            movie,
            t10,
            vec![Value::from(10), Value::from("Match Point"), Value::from(1)],
        )
        .unwrap();
        let t11 = db
            .insert(
                "MOVIE",
                vec![Value::from(11), Value::from("Cut Scene"), Value::from(2)],
            )
            .unwrap();
        db.delete(movie, t11).unwrap();
        db.update(
            director,
            precis_storage::TupleId(1),
            vec![Value::from(2), Value::from("S. Coppola"), Value::from(8.0)],
        )
        .unwrap();
    }

    #[test]
    fn empty_dir_recovers_to_nothing() {
        let dir = scratch_dir("rec-empty");
        assert!(recover(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_log_replay_reproduces_the_live_database() {
        let dir = scratch_dir("rec-full");
        let (mut db, wal) = live_db(&dir);
        populate(&mut db);
        wal.flush().unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(
            io::dump_to_string(&rec.db),
            io::dump_to_string(&db),
            "replay from the empty schema must reproduce the live state"
        );
        assert!(rec.report.truncated.is_none());
        assert_eq!(rec.report.skipped, 0);
        assert_eq!(rec.report.replayed, 8); // schema + 7 ops
        assert_eq!(rec.report.next_lsn, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_plus_tail_recovers_and_checkpoint_compacts() {
        let dir = scratch_dir("rec-snap-tail");
        let store = DurableStore::open(&dir).unwrap();
        let (mut db, wal) = live_db(&dir);
        populate(&mut db);
        // Checkpoint mid-stream: returns the compacted reload, which takes
        // over as the live database so tids keep matching the snapshot.
        let mut db = wal.with(|w| store.checkpoint(&db, w)).unwrap();
        db.set_wal_sink(Arc::new(wal.clone()));
        let movie = db.schema().relation_id("MOVIE").unwrap();
        let tid = db
            .insert(
                "MOVIE",
                vec![Value::from(12), Value::from("Sleeper"), Value::from(1)],
            )
            .unwrap();
        db.update(
            movie,
            tid,
            vec![
                Value::from(12),
                Value::from("Sleeper (1973)"),
                Value::from(1),
            ],
        )
        .unwrap();
        wal.flush().unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(io::dump_to_string(&rec.db), io::dump_to_string(&db));
        assert_eq!(rec.report.snapshot_lsn, Some(8));
        assert_eq!(rec.report.replayed, 2);
        assert_eq!(rec.report.skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_wal_records_are_skipped_not_double_applied() {
        // Simulate a crash between snapshot install and WAL rotation: the
        // snapshot covers everything but the old log is still on disk.
        let dir = scratch_dir("rec-stale");
        let (mut db, wal) = live_db(&dir);
        populate(&mut db);
        wal.flush().unwrap();
        write_snapshot(&db, wal.next_lsn(), dir.join(SNAPSHOT_FILE)).unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(io::dump_to_string(&rec.db), io::dump_to_string(&db));
        assert_eq!(rec.report.replayed, 0);
        assert_eq!(rec.report.skipped, 8);
        assert_eq!(rec.report.next_lsn, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = scratch_dir("rec-torn");
        let (mut db, wal) = live_db(&dir);
        populate(&mut db);
        wal.flush().unwrap();
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        for cut in [full.len() - 1, full.len() - 7, full.len() / 2] {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let first = recover(&dir).unwrap().unwrap();
            assert!(first.report.truncated.is_some(), "cut at {cut}");
            // The file was physically truncated: a second crash-and-recover
            // sees a clean log and lands on the identical database.
            let second = recover(&dir).unwrap().unwrap();
            assert!(second.report.truncated.is_none());
            assert_eq!(
                io::dump_to_string(&first.db),
                io::dump_to_string(&second.db)
            );
            assert_eq!(first.report.next_lsn, second.report.next_lsn);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_tid_mismatch_cuts_the_log() {
        let dir = scratch_dir("rec-tidmismatch");
        let empty = Database::new(sample_schema()).unwrap();
        let mut wal = Wal::create(dir.join(WAL_FILE), FsyncPolicy::Never, 0).unwrap();
        wal.append_schema_install(&io::dump_to_string(&empty))
            .unwrap();
        wal.append_op(WalOp::Insert {
            relation: "DIRECTOR".into(),
            // A fresh DIRECTOR table hands out tid 0; the log claiming 5
            // means snapshot and log disagree.
            tid: precis_storage::TupleId(5),
            values: vec![Value::from(1), Value::from("X"), Value::Null],
        })
        .unwrap();
        drop(wal);
        let rec = recover(&dir).unwrap().unwrap();
        assert!(rec.report.truncated.unwrap().contains("tid"));
        assert_eq!(rec.db.total_tuples(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutation_before_schema_is_refused() {
        let dir = scratch_dir("rec-noschema");
        let mut wal = Wal::create(dir.join(WAL_FILE), FsyncPolicy::Never, 0).unwrap();
        wal.append_op(WalOp::Delete {
            relation: "MOVIE".into(),
            tid: precis_storage::TupleId(0),
        })
        .unwrap();
        drop(wal);
        assert!(recover(&dir).unwrap().is_none());
        // The unusable record was truncated away.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_store_reopens_and_keeps_accepting_writes() {
        let dir = scratch_dir("rec-reopen");
        let (mut db, wal) = live_db(&dir);
        populate(&mut db);
        wal.flush().unwrap();
        drop((db, wal));
        // "Restart": recover, reopen the wal at the reported LSN, write more.
        let store = DurableStore::open(&dir).unwrap();
        let rec = store.recover().unwrap().unwrap();
        let wal = store
            .open_wal(FsyncPolicy::Always, rec.report.next_lsn)
            .unwrap();
        let shared = SharedWal::new(wal);
        let mut db = rec.db;
        db.set_wal_sink(Arc::new(shared.clone()));
        db.insert(
            "DIRECTOR",
            vec![Value::from(3), Value::from("Lee"), Value::from(9.0)],
        )
        .unwrap();
        drop((db, shared));
        let again = recover(&dir).unwrap().unwrap();
        assert_eq!(again.report.truncated, None);
        let director = again.db.schema().relation_id("DIRECTOR").unwrap();
        assert_eq!(again.db.len(director), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_beats_schema_install_when_both_present() {
        // After a checkpoint the rotated log is empty, but if a crash left
        // stale pre-checkpoint records (including the schema install), the
        // LSN floor must skip them all instead of re-installing the schema.
        let dir = scratch_dir("rec-snapwins");
        let (mut db, wal) = live_db(&dir);
        populate(&mut db);
        write_snapshot(&db, wal.next_lsn(), dir.join(SNAPSHOT_FILE)).unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.report.skipped, 8);
        assert_eq!(io::dump_to_string(&rec.db), io::dump_to_string(&db));
        std::fs::remove_dir_all(&dir).ok();
    }
}
