//! # precis-durability
//!
//! Durability for the précis engine: an append-only checksummed
//! write-ahead log, atomic snapshots, and crash recovery that truncates a
//! torn tail instead of refusing to start.
//!
//! The moving parts, bottom-up:
//!
//! * [`crc::crc32`] — dependency-free CRC-32 (IEEE) over record payloads.
//! * [`record`] — the binary frame codec (`len | crc | lsn kind body`).
//! * [`Wal`] / [`SharedWal`] — the append side with group commit under a
//!   configurable [`FsyncPolicy`]; `SharedWal` plugs into
//!   [`precis_storage::WalSink`] so every `Database` mutation streams here.
//! * [`write_snapshot`] / [`load_snapshot`] — `precisdb` dumps with an LSN
//!   header, installed via temp file + atomic rename.
//! * [`recover`] — snapshot + WAL-tail replay with an LSN floor, insert-tid
//!   verification, and physical truncate-at-first-bad-record.
//! * [`DurableStore`] — the data-directory layout and the
//!   checkpoint-as-compaction-point protocol.
//!
//! The durability contract is **ACK-after-fsync**: a mutation is durable
//! once [`Wal::flush`] (or an `Always`/`Batch` policy sync) returns and the
//! write is acknowledged. Unacknowledged tail records may survive a crash
//! or may be cut; either outcome is consistent.

pub mod crc;
pub mod record;
pub mod recover;
pub mod snapshot;
pub mod store;
#[cfg(test)]
mod testutil;
pub mod wal;

pub use record::{decode_frame, encode_frame, WalEntry, MAX_PAYLOAD};
pub use recover::{recover, Recovered, RecoveryReport};
pub use snapshot::{load_snapshot, write_snapshot, Snapshot};
pub use store::{DurableStore, SNAPSHOT_FILE, WAL_FILE};
pub use wal::{read_one, scan_wal, FsyncPolicy, SharedWal, Wal, WalMark, WalScan, WalStats};
