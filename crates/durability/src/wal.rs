//! The append-only write-ahead log: group commit, fsync policies, and the
//! lenient scanner recovery uses to read a possibly-torn log back.

use crate::record::{decode_frame, encode_frame, WalEntry};
use precis_storage::{failpoint, Result, StorageError, WalOp, WalSink};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// When appended records reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync: records reach the OS page cache only. Survives process
    /// crashes (`kill -9`), not power loss.
    Never,
    /// Group commit: fsync once every `n` appended records and on every
    /// explicit [`Wal::flush`].
    Batch(usize),
    /// Fsync after every append. Slowest, zero acknowledged-write loss.
    Always,
}

/// Monotone counters the server exports as `precis_wal_*` metrics.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended since open.
    pub appended: AtomicU64,
    /// fsync calls issued since open.
    pub fsyncs: AtomicU64,
}

/// A point in the log a writer can roll back to: the byte length of the
/// file and the LSN the next record would carry, taken together *before* a
/// batch via [`Wal::mark`]. If any append or fsync in the batch fails,
/// [`Wal::truncate_to_mark`] physically cuts the file back here — erasing
/// half-written frames and abandoned records so they can never interleave
/// with (or steal the LSNs/tids of) later acknowledged writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalMark {
    next_lsn: u64,
    bytes: u64,
}

/// The append side of the log. One writer at a time; share behind
/// [`SharedWal`] for sink use.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    next_lsn: u64,
    /// Byte length of the fully-written frame prefix. A failed `write_all`
    /// may leave extra partial bytes in the file past this point; rollback
    /// truncates to a mark ≤ this, which erases them.
    bytes: u64,
    /// Appends since the last fsync (drives [`FsyncPolicy::Batch`]).
    unsynced: usize,
    stats: Arc<WalStats>,
}

impl Wal {
    /// Create a fresh, empty log at `path`, truncating any existing file.
    /// The first record will carry LSN `next_lsn`.
    pub fn create(path: impl AsRef<Path>, policy: FsyncPolicy, next_lsn: u64) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        Ok(Wal {
            file,
            path,
            policy,
            next_lsn,
            bytes: 0,
            unsynced: 0,
            stats: Arc::new(WalStats::default()),
        })
    }

    /// Open an existing log for appending. `next_lsn` comes from recovery
    /// (one past the last valid record); recovery has already truncated any
    /// torn tail, so appending extends a clean prefix.
    pub fn open_for_append(
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
        next_lsn: u64,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let bytes = file.metadata().map_err(|e| io_err(&path, e))?.len();
        Ok(Wal {
            file,
            path,
            policy,
            next_lsn,
            bytes,
            unsynced: 0,
            stats: Arc::new(WalStats::default()),
        })
    }

    /// The LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry; returns its LSN. Fsyncs per the policy — callers
    /// that acknowledge writes must still call [`Wal::flush`] before
    /// acknowledging (the group-commit barrier).
    pub fn append(&mut self, entry: &WalEntry) -> Result<u64> {
        let _span = precis_obs::span("wal.append");
        failpoint::check("wal_append")?;
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, entry)?;
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.next_lsn += 1;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Append a storage mutation.
    pub fn append_op(&mut self, op: WalOp) -> Result<u64> {
        self.append(&WalEntry::Op(op))
    }

    /// Append a schema-install record (the bootstrap entry of a log with no
    /// snapshot underneath).
    pub fn append_schema_install(&mut self, schema_text: &str) -> Result<u64> {
        self.append(&WalEntry::SchemaInstall {
            schema_text: schema_text.to_owned(),
        })
    }

    /// Group-commit barrier: push buffered records to disk now (no-op under
    /// [`FsyncPolicy::Never`] beyond the OS write already issued).
    pub fn flush(&mut self) -> Result<()> {
        if self.unsynced == 0 || self.policy == FsyncPolicy::Never {
            return Ok(());
        }
        self.sync()
    }

    fn sync(&mut self) -> Result<()> {
        let _span = precis_obs::span("wal.fsync");
        failpoint::check("wal_fsync")?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        self.unsynced = 0;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The current end of the log, for rolling a failed batch back. Take
    /// one before appending a batch; see [`Wal::truncate_to_mark`].
    pub fn mark(&self) -> WalMark {
        WalMark {
            next_lsn: self.next_lsn,
            bytes: self.bytes,
        }
    }

    /// Physically cut the log back to `mark`, durably: every frame appended
    /// after it — including any half-written frame a failed append left —
    /// is erased, and the next append reuses the mark's LSN at the mark's
    /// offset. The write lock's batch-abort path uses this so abandoned
    /// records can never coexist with later acknowledged ones claiming the
    /// same LSNs and tuple slots (recovery would truncate at the duplicate
    /// and lose acknowledged writes).
    ///
    /// If this itself fails the log's on-disk state is unknown; the caller
    /// must stop appending (the server poisons its durability state and
    /// refuses further mutations until restart).
    pub fn truncate_to_mark(&mut self, mark: WalMark) -> Result<()> {
        use std::io::Seek as _;
        self.file
            .set_len(mark.bytes)
            .map_err(|e| io_err(&self.path, e))?;
        // Rewind: set_len does not move the write cursor, and leaving it
        // past EOF would zero-fill a gap before the next frame. (Files
        // opened in append mode ignore the cursor; seeking is harmless.)
        self.file
            .seek(std::io::SeekFrom::Start(mark.bytes))
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        self.next_lsn = mark.next_lsn;
        self.bytes = mark.bytes;
        self.unsynced = 0;
        Ok(())
    }

    /// Rotate after a checkpoint: the snapshot now covers every record, so
    /// the log restarts empty. LSNs keep counting — recovery uses the
    /// snapshot's LSN to skip anything older, which also makes a crash
    /// between snapshot install and rotation harmless.
    pub fn rotate(&mut self) -> Result<()> {
        use std::io::Seek as _;
        self.file.set_len(0).map_err(|e| io_err(&self.path, e))?;
        // Rewind: set_len does not move the write cursor, and leaving it
        // past EOF would zero-fill a gap before the next frame.
        self.file
            .seek(std::io::SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, e))?;
        self.bytes = 0;
        self.sync()?;
        self.unsynced = 0;
        Ok(())
    }
}

fn io_err(path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("wal {}: {e}", path.display()))
}

/// A [`Wal`] shareable across engine clones: implements the storage
/// [`WalSink`] trait so a `Database` reports every mutation here.
#[derive(Debug, Clone)]
pub struct SharedWal(Arc<Mutex<Wal>>);

impl SharedWal {
    pub fn new(wal: Wal) -> Self {
        SharedWal(Arc::new(Mutex::new(wal)))
    }

    /// Run `f` with the locked writer (append batches, flush, checkpoint).
    pub fn with<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        let mut wal = self.0.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut wal)
    }

    /// Group-commit barrier; see [`Wal::flush`].
    pub fn flush(&self) -> Result<()> {
        self.with(|w| w.flush())
    }

    /// The current end of the log; see [`Wal::mark`].
    pub fn mark(&self) -> WalMark {
        self.with(|w| w.mark())
    }

    /// Roll a failed batch back; see [`Wal::truncate_to_mark`].
    pub fn truncate_to_mark(&self, mark: WalMark) -> Result<()> {
        self.with(|w| w.truncate_to_mark(mark))
    }

    pub fn stats(&self) -> Arc<WalStats> {
        self.with(|w| w.stats())
    }

    pub fn next_lsn(&self) -> u64 {
        self.with(|w| w.next_lsn())
    }
}

impl WalSink for SharedWal {
    fn record(&self, op: WalOp) -> Result<()> {
        self.with(|w| w.append_op(op)).map(|_lsn| ())
    }
}

/// Result of scanning a log file leniently.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid record in order: `(lsn, entry)`.
    pub entries: Vec<(u64, WalEntry)>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// Why the tail was cut, if it was (`None` = the whole file is valid).
    pub truncated: Option<String>,
}

/// Read every valid record from `path`, stopping (not failing) at the first
/// torn or corrupt frame. A missing file is an empty log. `Err` is reserved
/// for the file being unreadable at all.
pub fn scan_wal(path: impl AsRef<Path>) -> Result<WalScan> {
    let _span = precis_obs::span("wal.replay");
    let path = path.as_ref();
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                entries: Vec::new(),
                valid_bytes: 0,
                truncated: None,
            })
        }
        Err(e) => return Err(io_err(path, e)),
    };
    let mut entries = Vec::new();
    let mut offset = 0usize;
    let mut truncated = None;
    loop {
        match read_one(&buf, offset) {
            Ok(Some((consumed, lsn, entry))) => {
                entries.push((lsn, entry));
                offset += consumed;
            }
            Ok(None) => break,
            Err(e) => {
                truncated = Some(e.to_string());
                break;
            }
        }
    }
    Ok(WalScan {
        entries,
        valid_bytes: offset as u64,
        truncated,
    })
}

/// Strict single-frame read used by [`scan_wal`] and the fault harness:
/// propagates torn/corrupt frames (and injected `wal_replay` faults) as
/// errors instead of truncating.
pub fn read_one(
    buf: &[u8],
    offset: usize,
) -> std::result::Result<Option<(usize, u64, WalEntry)>, StorageError> {
    failpoint::check("wal_replay")?;
    decode_frame(buf, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;
    use precis_storage::{TupleId, Value};

    fn op(i: u64) -> WalOp {
        WalOp::Insert {
            relation: "R".into(),
            tid: TupleId(i),
            values: vec![Value::from(i as i64), Value::from(format!("row {i}"))],
        }
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = scratch_dir("wal-roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Always, 1).unwrap();
        wal.append_schema_install("precisdb 1\nschema s\n").unwrap();
        for i in 0..10 {
            wal.append_op(op(i)).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.next_lsn(), 12);
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.truncated.is_none());
        assert_eq!(scan.entries.len(), 11);
        assert_eq!(scan.entries[0].0, 1);
        assert!(matches!(scan.entries[0].1, WalEntry::SchemaInstall { .. }));
        assert_eq!(scan.entries[10].0, 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tails_truncate_at_every_cut_point() {
        let dir = scratch_dir("wal-torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never, 0).unwrap();
        for i in 0..5 {
            wal.append_op(op(i)).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let whole = scan_wal(&path).unwrap();
        assert_eq!(whole.entries.len(), 5);
        let cut_path = dir.join("cut.log");
        for end in 0..full.len() {
            std::fs::write(&cut_path, &full[..end]).unwrap();
            let scan = scan_wal(&cut_path).unwrap();
            assert!(scan.entries.len() <= 5);
            assert!(scan.valid_bytes <= end as u64);
            if end < full.len() && scan.entries.len() < 5 {
                // Anything but the exact full file loses only whole frames
                // off the tail, never earlier records.
                for (i, (lsn, _)) in scan.entries.iter().enumerate() {
                    assert_eq!(*lsn, i as u64);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_middle_record_cuts_the_rest() {
        let dir = scratch_dir("wal-corrupt");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never, 0).unwrap();
        for i in 0..5 {
            wal.append_op(op(i)).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let frame_len = bytes.len() / 5;
        // Flip a payload byte inside the third record.
        bytes[2 * frame_len + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert!(scan.truncated.unwrap().contains("checksum"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policies_schedule_syncs() {
        let dir = scratch_dir("wal-fsync");
        let append_n = |policy, n: u64| {
            let mut wal = Wal::create(dir.join("w.log"), policy, 0).unwrap();
            for i in 0..n {
                wal.append_op(op(i)).unwrap();
            }
            let stats = wal.stats();
            (
                stats.appended.load(Ordering::Relaxed),
                stats.fsyncs.load(Ordering::Relaxed),
            )
        };
        assert_eq!(append_n(FsyncPolicy::Always, 6), (6, 6));
        assert_eq!(append_n(FsyncPolicy::Batch(4), 6), (6, 1));
        assert_eq!(append_n(FsyncPolicy::Never, 6), (6, 0));
        // An explicit flush syncs pending batch records exactly once.
        let mut wal = Wal::create(dir.join("w.log"), FsyncPolicy::Batch(100), 0).unwrap();
        wal.append_op(op(0)).unwrap();
        wal.flush().unwrap();
        wal.flush().unwrap(); // nothing pending: no extra fsync
        assert_eq!(wal.stats().fsyncs.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotate_empties_the_log_but_keeps_lsns_monotone() {
        let dir = scratch_dir("wal-rotate");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never, 0).unwrap();
        for i in 0..3 {
            wal.append_op(op(i)).unwrap();
        }
        wal.rotate().unwrap();
        assert_eq!(wal.next_lsn(), 3);
        wal.append_op(op(99)).unwrap();
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].0, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_to_mark_erases_a_failed_batch_and_reuses_its_lsns() {
        let dir = scratch_dir("wal-rollback");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never, 0).unwrap();
        for i in 0..3 {
            wal.append_op(op(i)).unwrap();
        }
        wal.flush().unwrap();
        let mark = wal.mark();
        assert_eq!(
            mark,
            WalMark {
                next_lsn: 3,
                bytes: std::fs::metadata(&path).unwrap().len(),
            }
        );
        // A "failed batch": two appended records plus stray partial bytes
        // from a torn third append land in the file past the mark.
        wal.append_op(op(3)).unwrap();
        wal.append_op(op(4)).unwrap();
        use std::io::Write as _;
        wal.file.write_all(&[0xAB; 7]).unwrap();
        wal.truncate_to_mark(mark).unwrap();
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), mark.bytes);
        // The rolled-back LSNs and slots are reclaimed by the next batch;
        // the log scans clean with no gap and no duplicate.
        wal.append_op(op(3)).unwrap();
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.truncated.is_none(), "{:?}", scan.truncated);
        assert_eq!(
            scan.entries.iter().map(|(lsn, _)| *lsn).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_wal_rolls_back_across_restarts() {
        // open_for_append must learn the file's real length, or a later
        // rollback would truncate to the wrong offset.
        let dir = scratch_dir("wal-reopen-mark");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never, 0).unwrap();
        wal.append_op(op(0)).unwrap();
        drop(wal);
        let mut wal = Wal::open_for_append(&path, FsyncPolicy::Never, 1).unwrap();
        let mark = wal.mark();
        assert_eq!(mark.bytes, std::fs::metadata(&path).unwrap().len());
        wal.append_op(op(1)).unwrap();
        wal.truncate_to_mark(mark).unwrap();
        wal.append_op(op(1)).unwrap();
        drop(wal);
        let scan = scan_wal(&path).unwrap();
        assert!(scan.truncated.is_none());
        assert_eq!(scan.entries.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_records_are_refused_at_append_time() {
        let dir = scratch_dir("wal-oversize");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, FsyncPolicy::Never, 0).unwrap();
        let err = wal
            .append_op(WalOp::Delete {
                relation: "R".repeat((u16::MAX as usize) + 1),
                tid: TupleId(0),
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::WalFailed(_)), "{err:?}");
        // Nothing reached the file and the LSN did not advance.
        assert_eq!(wal.next_lsn(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_wal_is_a_wal_sink() {
        let dir = scratch_dir("wal-sink");
        let wal = Wal::create(dir.join("wal.log"), FsyncPolicy::Never, 0).unwrap();
        let shared = SharedWal::new(wal);
        let sink: &dyn WalSink = &shared;
        sink.record(op(0)).unwrap();
        sink.record(op(1)).unwrap();
        shared.flush().unwrap();
        assert_eq!(shared.next_lsn(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
