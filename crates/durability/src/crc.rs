//! CRC-32 (IEEE 802.3 polynomial), table-driven, no dependencies.
//!
//! Used to checksum every WAL record payload so replay can distinguish a
//! torn tail (truncate and serve) from valid data. The polynomial matches
//! zlib/`cksum -o 3`, so log files can be spot-checked with standard tools.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"precis wal record payload".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip at byte {i} bit {bit}");
            }
        }
    }
}
