//! The WAL record format: length-prefixed, checksummed binary frames.
//!
//! ```text
//! frame   := len:u32 LE | crc:u32 LE | payload[len]
//! payload := lsn:u64 LE | kind:u8 | body
//! kind    := 1 insert | 2 update | 3 delete | 4 schema-install
//! body(insert|update) := rel | tid:u64 LE | nvalues:u16 LE | value*
//! body(delete)        := rel | tid:u64 LE
//! body(schema)        := text:u32-prefixed UTF-8 (a precisdb dump of the
//!                        empty database — schema blocks only)
//! rel     := u16 LE length-prefixed UTF-8 relation name
//! value   := 0 null | 1 int:i64 LE | 2 float:f64-bits LE
//!          | 3 bool:u8 | 4 text:u32-prefixed UTF-8
//! ```
//!
//! The CRC covers the whole payload (including the LSN), so a torn write —
//! a frame whose length field promises more bytes than the file holds, or
//! whose payload was only partially flushed — is detected at the frame
//! boundary and replay truncates there.

use crate::crc::crc32;
use precis_storage::{StorageError, TupleId, Value, WalOp};

/// One logical WAL entry (the payload of a frame, minus its LSN).
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// A storage mutation.
    Op(WalOp),
    /// Install a schema into an empty store: the payload is a `precisdb`
    /// dump of the empty database. Only valid as the first entry of a log
    /// that has no snapshot underneath it.
    SchemaInstall { schema_text: String },
}

const KIND_INSERT: u8 = 1;
const KIND_UPDATE: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_SCHEMA: u8 = 4;

/// Hard cap on a single frame payload (16 MiB): a torn length field cannot
/// make the reader attempt a multi-gigabyte allocation.
pub const MAX_PAYLOAD: u32 = 16 << 20;

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

/// An encode-time size violation: a length that does not fit its field
/// width would otherwise be silently truncated, producing a frame that
/// passes its CRC but decodes to wrong data (or a "trailing bytes"
/// corruption that cuts the log on replay).
fn oversized(what: &str, len: usize, max: usize) -> StorageError {
    StorageError::WalFailed(format!(
        "{what} of {len} bytes exceeds the record cap {max}"
    ))
}

fn put_str(out: &mut Vec<u8>, s: &str, wide: bool) -> Result<(), StorageError> {
    if wide {
        let len =
            u32::try_from(s.len()).map_err(|_| oversized("text", s.len(), u32::MAX as usize))?;
        out.extend_from_slice(&len.to_le_bytes());
    } else {
        let len = u16::try_from(s.len())
            .map_err(|_| oversized("relation name", s.len(), u16::MAX as usize))?;
        out.extend_from_slice(&len.to_le_bytes());
    }
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<(), StorageError> {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
        Value::Text(s) => {
            out.push(4);
            put_str(out, s, true)?;
        }
    }
    Ok(())
}

fn put_values(out: &mut Vec<u8>, values: &[Value]) -> Result<(), StorageError> {
    let n = u16::try_from(values.len())
        .map_err(|_| oversized("row", values.len(), u16::MAX as usize))?;
    out.extend_from_slice(&n.to_le_bytes());
    for v in values {
        put_value(out, v)?;
    }
    Ok(())
}

/// Serialize one entry into a complete frame (header + payload). Fails —
/// instead of silently truncating a length field — when a relation name,
/// value count, or text value exceeds its field width, or when the whole
/// payload would exceed [`MAX_PAYLOAD`] (the reader rejects such frames).
pub fn encode_frame(lsn: u64, entry: &WalEntry) -> Result<Vec<u8>, StorageError> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&lsn.to_le_bytes());
    match entry {
        WalEntry::Op(WalOp::Insert {
            relation,
            tid,
            values,
        }) => {
            payload.push(KIND_INSERT);
            put_str(&mut payload, relation, false)?;
            payload.extend_from_slice(&tid.0.to_le_bytes());
            put_values(&mut payload, values)?;
        }
        WalEntry::Op(WalOp::Update {
            relation,
            tid,
            values,
        }) => {
            payload.push(KIND_UPDATE);
            put_str(&mut payload, relation, false)?;
            payload.extend_from_slice(&tid.0.to_le_bytes());
            put_values(&mut payload, values)?;
        }
        WalEntry::Op(WalOp::Delete { relation, tid }) => {
            payload.push(KIND_DELETE);
            put_str(&mut payload, relation, false)?;
            payload.extend_from_slice(&tid.0.to_le_bytes());
        }
        WalEntry::SchemaInstall { schema_text } => {
            payload.push(KIND_SCHEMA);
            put_str(&mut payload, schema_text, true)?;
        }
    }
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(oversized(
            "record payload",
            payload.len(),
            MAX_PAYLOAD as usize,
        ));
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("payload shorter than its fields"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StorageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self, wide: bool) -> Result<String, StorageError> {
        let n = if wide {
            self.u32()? as usize
        } else {
            self.u16()? as usize
        };
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("non-UTF-8 string in record"))
    }

    fn value(&mut self) -> Result<Value, StorageError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            2 => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )))),
            3 => Ok(Value::Bool(self.u8()? != 0)),
            4 => Ok(Value::Text(self.str(true)?)),
            tag => Err(corrupt(format!("unknown value tag {tag}"))),
        }
    }
}

/// Decode one frame starting at `buf[offset..]`.
///
/// * `Ok(None)` — clean end of log (no bytes left).
/// * `Ok(Some((consumed, lsn, entry)))` — a valid frame.
/// * `Err(Corrupt)` — a torn or corrupt frame at this offset: the caller
///   should truncate the log here.
pub fn decode_frame(
    buf: &[u8],
    offset: usize,
) -> Result<Option<(usize, u64, WalEntry)>, StorageError> {
    let rest = &buf[offset..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < 8 {
        return Err(corrupt("torn frame header"));
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(corrupt(format!("frame length {len} exceeds cap")));
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let len = len as usize;
    if rest.len() < 8 + len {
        return Err(corrupt("torn frame payload"));
    }
    let payload = &rest[8..8 + len];
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let lsn = c.u64()?;
    let kind = c.u8()?;
    let entry = match kind {
        KIND_INSERT | KIND_UPDATE => {
            let relation = c.str(false)?;
            let tid = TupleId(c.u64()?);
            let n = c.u16()? as usize;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.value()?);
            }
            if kind == KIND_INSERT {
                WalEntry::Op(WalOp::Insert {
                    relation,
                    tid,
                    values,
                })
            } else {
                WalEntry::Op(WalOp::Update {
                    relation,
                    tid,
                    values,
                })
            }
        }
        KIND_DELETE => WalEntry::Op(WalOp::Delete {
            relation: c.str(false)?,
            tid: TupleId(c.u64()?),
        }),
        KIND_SCHEMA => WalEntry::SchemaInstall {
            schema_text: c.str(true)?,
        },
        other => return Err(corrupt(format!("unknown record kind {other}"))),
    };
    if c.pos != payload.len() {
        return Err(corrupt("trailing bytes in record payload"));
    }
    Ok(Some((8 + len, lsn, entry)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<WalEntry> {
        vec![
            WalEntry::SchemaInstall {
                schema_text: "precisdb 1\nschema s\n".to_owned(),
            },
            WalEntry::Op(WalOp::Insert {
                relation: "MOVIE".into(),
                tid: TupleId(0),
                values: vec![
                    Value::from(42),
                    Value::from("Match\tPoint"),
                    Value::Null,
                    Value::from(2.5),
                    Value::Float(f64::NAN),
                    Value::from(true),
                ],
            }),
            WalEntry::Op(WalOp::Update {
                relation: "MOVIE".into(),
                tid: TupleId(7),
                values: vec![Value::from(1)],
            }),
            WalEntry::Op(WalOp::Delete {
                relation: "R".into(),
                tid: TupleId(u64::MAX),
            }),
        ]
    }

    #[test]
    fn frames_round_trip() {
        for (i, entry) in sample_entries().into_iter().enumerate() {
            let frame = encode_frame(i as u64 + 1, &entry).unwrap();
            let (consumed, lsn, decoded) = decode_frame(&frame, 0).unwrap().unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(decoded, entry);
        }
    }

    #[test]
    fn every_truncation_is_a_clean_corrupt_error() {
        let mut buf = Vec::new();
        for (i, e) in sample_entries().iter().enumerate() {
            buf.extend_from_slice(&encode_frame(i as u64, e).unwrap());
        }
        for end in 0..buf.len() {
            // Walk frames until the cut; the error must be Corrupt, never a
            // panic, and the prefix before the cut must decode intact.
            let mut off = 0;
            loop {
                match decode_frame(&buf[..end], off) {
                    Ok(Some((n, _, _))) => off += n,
                    Ok(None) => break,
                    Err(e) => {
                        assert!(matches!(e, StorageError::Corrupt(_)), "cut at {end}: {e:?}");
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let frame = encode_frame(9, &sample_entries()[1]).unwrap();
        for i in 8..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_frame(&bad, 0).is_err(),
                "payload flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn absurd_length_fields_are_rejected_without_allocating() {
        let mut frame = encode_frame(1, &sample_entries()[3]).unwrap();
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&frame, 0).is_err());
    }

    #[test]
    fn empty_buffer_is_clean_eof() {
        assert!(decode_frame(&[], 0).unwrap().is_none());
    }

    #[test]
    fn oversized_lengths_error_instead_of_truncating() {
        // A relation name wider than its u16 length field.
        let e = encode_frame(
            0,
            &WalEntry::Op(WalOp::Delete {
                relation: "R".repeat((u16::MAX as usize) + 1),
                tid: TupleId(0),
            }),
        )
        .unwrap_err();
        assert!(matches!(&e, StorageError::WalFailed(m) if m.contains("relation name")));
        // A row with more values than the u16 count field can carry.
        let e = encode_frame(
            0,
            &WalEntry::Op(WalOp::Insert {
                relation: "R".into(),
                tid: TupleId(0),
                values: vec![Value::Null; (u16::MAX as usize) + 1],
            }),
        )
        .unwrap_err();
        assert!(matches!(&e, StorageError::WalFailed(m) if m.contains("row")));
        // A payload past MAX_PAYLOAD (one big text value).
        let e = encode_frame(
            0,
            &WalEntry::SchemaInstall {
                schema_text: "x".repeat(MAX_PAYLOAD as usize + 1),
            },
        )
        .unwrap_err();
        assert!(matches!(&e, StorageError::WalFailed(m) if m.contains("payload")));
    }
}
