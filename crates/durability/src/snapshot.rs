//! Snapshots: a `precisdb` dump with an LSN header, installed atomically.
//!
//! ```text
//! precisnap 1
//! lsn <next_lsn>
//! <precisdb dump ...>
//! ```
//!
//! `next_lsn` is the first LSN **not** covered by the snapshot: recovery
//! replays only WAL records with `lsn >= next_lsn`, which makes the crash
//! window between installing a snapshot and rotating the WAL harmless —
//! stale records are skipped, never double-applied.

use precis_storage::{io, Database, Result, StorageError};
use std::io::Write as _;
use std::path::Path;

/// A loaded snapshot: the database plus the first LSN to replay on top.
#[derive(Debug)]
pub struct Snapshot {
    pub db: Database,
    pub next_lsn: u64,
}

fn io_err(path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("snapshot {}: {e}", path.display()))
}

/// Write `db` to `path` crash-atomically: dump to a temporary sibling,
/// fsync, rename over `path`, and best-effort fsync the directory. A crash
/// at any point leaves either the old snapshot or the new one.
pub fn write_snapshot(db: &Database, next_lsn: u64, path: impl AsRef<Path>) -> Result<()> {
    let _span = precis_obs::span("wal.snapshot_install");
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(path, e))?;
        f.write_all(format!("precisnap 1\nlsn {next_lsn}\n").as_bytes())
            .map_err(|e| io_err(path, e))?;
        f.write_all(io::dump_to_string(db).as_bytes())
            .map_err(|e| io_err(path, e))?;
        f.sync_all().map_err(|e| io_err(path, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load the snapshot at `path`. `Ok(None)` when the file does not exist
/// (a store that has never checkpointed); `Err(Corrupt)` when the file
/// exists but cannot be parsed — the atomic install makes that a sign of
/// external damage, not a crash artifact, so recovery refuses it loudly
/// rather than silently serving an empty database.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Option<Snapshot>> {
    let path = path.as_ref();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, e)),
    };
    let corrupt = |msg: &str| StorageError::Corrupt(format!("snapshot {}: {msg}", path.display()));
    let rest = text
        .strip_prefix("precisnap 1\n")
        .ok_or_else(|| corrupt("missing precisnap header"))?;
    let (lsn_line, dump) = rest
        .split_once('\n')
        .ok_or_else(|| corrupt("missing lsn line"))?;
    let next_lsn = lsn_line
        .strip_prefix("lsn ")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| corrupt("bad lsn line"))?;
    let db = io::load_from_string(dump)?;
    Ok(Some(Snapshot { db, next_lsn }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_db, scratch_dir};

    #[test]
    fn snapshots_round_trip_with_their_lsn() {
        let dir = scratch_dir("snap-roundtrip");
        let path = dir.join("snapshot.precisdb");
        let db = sample_db();
        write_snapshot(&db, 17, &path).unwrap();
        let snap = load_snapshot(&path).unwrap().unwrap();
        assert_eq!(snap.next_lsn, 17);
        assert_eq!(
            io::dump_to_string(&snap.db),
            io::dump_to_string(&db),
            "snapshot must preserve the database byte-for-byte"
        );
        assert!(
            !dir.join("snapshot.precisdb.tmp").exists(),
            "temp file must not survive installation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_none_and_damage_is_corrupt() {
        let dir = scratch_dir("snap-missing");
        let path = dir.join("snapshot.precisdb");
        assert!(load_snapshot(&path).unwrap().is_none());
        std::fs::write(&path, "not a snapshot at all\n").unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::write(&path, "precisnap 1\nlsn banana\nprecisdb 1\n").unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reinstall_replaces_wholesale() {
        let dir = scratch_dir("snap-reinstall");
        let path = dir.join("snapshot.precisdb");
        write_snapshot(&sample_db(), 3, &path).unwrap();
        let mut db = sample_db();
        let rel = db.schema().relation_id("MOVIE").unwrap();
        db.insert_into(
            rel,
            vec![
                precis_storage::Value::from(11),
                precis_storage::Value::from("Interiors"),
                precis_storage::Value::from(1),
            ],
        )
        .unwrap();
        write_snapshot(&db, 9, &path).unwrap();
        let snap = load_snapshot(&path).unwrap().unwrap();
        assert_eq!(snap.next_lsn, 9);
        assert_eq!(snap.db.total_tuples(), db.total_tuples());
        std::fs::remove_dir_all(&dir).ok();
    }
}
