//! [`DurableStore`]: the on-disk layout of a durable précis database and
//! the checkpoint protocol that ties snapshots and the WAL together.
//!
//! A data directory holds exactly two files:
//!
//! ```text
//! <dir>/snapshot.precisdb   latest snapshot (precisnap header + precisdb dump)
//! <dir>/wal.log             append-only record log since that snapshot
//! ```
//!
//! **Checkpoint = compaction point.** `precisdb` dumps skip tombstones, so
//! a reloaded snapshot renumbers tuple ids densely. To keep live tids equal
//! to snapshot tids (which insert-replay verification depends on), a
//! checkpoint dumps the live database, rotates the WAL, *reloads the dump*,
//! and hands the compacted reload back to the caller as the new live
//! database. Both sides of the crash window agree: recover before the
//! rotation and the LSN floor skips the stale log; recover after and the
//! log is empty.

use crate::recover::{recover, Recovered};
use crate::snapshot::write_snapshot;
use crate::wal::{FsyncPolicy, Wal};
use precis_storage::{Database, Result, StorageError};
use std::path::{Path, PathBuf};

/// Snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.precisdb";
/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// A data directory: paths, recovery, and checkpointing.
#[derive(Debug, Clone)]
pub struct DurableStore {
    dir: PathBuf,
}

impl DurableStore {
    /// Open (creating if needed) the data directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<DurableStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::Io(format!("data dir {}: {e}", dir.display())))?;
        Ok(DurableStore { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Recover whatever the directory holds; see [`recover`].
    pub fn recover(&self) -> Result<Option<Recovered>> {
        recover(&self.dir)
    }

    /// Create a fresh, empty WAL (bootstrap, or tests).
    pub fn create_wal(&self, policy: FsyncPolicy, next_lsn: u64) -> Result<Wal> {
        Wal::create(self.wal_path(), policy, next_lsn)
    }

    /// Reopen the WAL for appending after recovery reported `next_lsn`.
    pub fn open_wal(&self, policy: FsyncPolicy, next_lsn: u64) -> Result<Wal> {
        Wal::open_for_append(self.wal_path(), policy, next_lsn)
    }

    /// Checkpoint: snapshot `db` (covering every LSN below `wal.next_lsn()`),
    /// rotate the log, and return the compacted reload that must replace the
    /// live database. The caller holds the write lock and re-attaches its
    /// WAL sink and rebuilds its index on the returned database.
    pub fn checkpoint(&self, db: &Database, wal: &mut Wal) -> Result<Database> {
        write_snapshot(db, wal.next_lsn(), self.snapshot_path())?;
        wal.rotate()?;
        let snap = crate::snapshot::load_snapshot(self.snapshot_path())?.ok_or_else(|| {
            StorageError::Corrupt("snapshot vanished immediately after checkpoint".into())
        })?;
        Ok(snap.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_db, scratch_dir};
    use precis_storage::{io, TupleId, Value};

    #[test]
    fn checkpoint_compacts_tombstones_and_rotates_the_log() {
        let dir = scratch_dir("store-ckpt");
        let store = DurableStore::open(&dir).unwrap();
        let mut db = sample_db();
        let director = db.schema().relation_id("DIRECTOR").unwrap();
        let movie = db.schema().relation_id("MOVIE").unwrap();
        // Drop the movie first so DIRECTOR tid 0 is unreferenced, then
        // tombstone it: compaction must renumber the survivor down to 0.
        db.delete(movie, TupleId(0)).unwrap();
        db.delete(director, TupleId(0)).unwrap();
        let mut wal = store.create_wal(crate::FsyncPolicy::Never, 0).unwrap();
        for i in 0..4 {
            wal.append_op(precis_storage::WalOp::Delete {
                relation: "MOVIE".into(),
                tid: TupleId(i),
            })
            .unwrap();
        }
        let compacted = store.checkpoint(&db, &mut wal).unwrap();
        // Tombstoned DIRECTOR slot 0 is gone: the survivor now lives at 0.
        assert_eq!(compacted.len(director), 1);
        assert_eq!(
            compacted.table(director).get(TupleId(0)).unwrap().get(1),
            Value::from("Sofia Coppola")
        );
        // The log restarted empty but LSNs keep counting.
        assert_eq!(std::fs::metadata(store.wal_path()).unwrap().len(), 0);
        assert_eq!(wal.next_lsn(), 4);
        // A recovery right now sees snapshot-only state == the compaction.
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(io::dump_to_string(&rec.db), io::dump_to_string(&compacted));
        assert_eq!(rec.report.snapshot_lsn, Some(4));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_is_idempotent_and_paths_are_stable() {
        let dir = scratch_dir("store-open");
        let nested = dir.join("a/b");
        let store = DurableStore::open(&nested).unwrap();
        let store2 = DurableStore::open(&nested).unwrap();
        assert_eq!(store.snapshot_path(), store2.snapshot_path());
        assert_eq!(store.wal_path(), nested.join("wal.log"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
