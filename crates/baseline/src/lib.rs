//! # precis-baseline
//!
//! A DISCOVER/DBXplorer-style **keyword search baseline** over the same
//! storage, graph and index substrates as the précis engine.
//!
//! This is the class of system the paper positions précis queries against
//! (§2): keyword matches are connected by *join trees* over the schema
//! graph, and each tree is evaluated into **flattened rows** — single tuples
//! concatenating attributes from every relation of the tree — ranked by the
//! number of joins (fewer joins ≙ tighter connection, as in DBXplorer).
//!
//! Contrast with a précis: no surrounding information beyond the connecting
//! path, no result schema, no constraints — just rows.

mod join_tree;
mod search;

pub use join_tree::JoinTree;
pub use search::{BaselineAnswer, FlatRow, KeywordSearch};
