//! Join trees: connected subgraphs of the schema graph linking the relations
//! that contain the query keywords (DISCOVER's "candidate networks").

use precis_graph::SchemaGraph;
use precis_storage::RelationId;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A join tree: the relations it spans and the join edges (schema-graph
/// edge indices) connecting them. Join edges are treated as undirected here
/// — a keyword join works either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    relations: Vec<RelationId>,
    edges: Vec<usize>,
}

impl JoinTree {
    /// Grow a tree that connects `terminals` (one relation per keyword,
    /// duplicates fine), attaching each terminal to the partial tree by a
    /// shortest undirected path. Returns `None` if the terminals are not
    /// connected or the tree would exceed `max_relations`.
    pub fn connect(
        graph: &SchemaGraph,
        terminals: &[RelationId],
        max_relations: usize,
    ) -> Option<JoinTree> {
        let (first, rest) = terminals.split_first()?;
        let mut relations: Vec<RelationId> = vec![*first];
        let mut edges: Vec<usize> = Vec::new();
        for &t in rest {
            if relations.contains(&t) {
                continue;
            }
            let path = shortest_path(graph, &relations, t)?;
            for (rel, edge) in path {
                if !relations.contains(&rel) {
                    relations.push(rel);
                }
                if !edges.contains(&edge) {
                    edges.push(edge);
                }
            }
            if relations.len() > max_relations {
                return None;
            }
        }
        Some(JoinTree { relations, edges })
    }

    pub fn relations(&self) -> &[RelationId] {
        &self.relations
    }

    pub fn edges(&self) -> &[usize] {
        &self.edges
    }

    /// Number of joins — the ranking criterion ("the number of joins", §2).
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }

    /// Relations adjacent to `rel` within the tree, with the connecting edge.
    pub fn neighbors(&self, graph: &SchemaGraph, rel: RelationId) -> Vec<(RelationId, usize)> {
        self.edges
            .iter()
            .filter_map(|&e| {
                let j = graph.join_edge(e);
                if j.from == rel {
                    Some((j.to, e))
                } else if j.to == rel {
                    Some((j.from, e))
                } else {
                    None
                }
            })
            .collect()
    }

    /// A canonical key for deduplicating trees found through different
    /// terminal assignments.
    pub fn canonical_key(&self) -> (BTreeSet<RelationId>, BTreeSet<usize>) {
        (
            self.relations.iter().copied().collect(),
            self.edges.iter().copied().collect(),
        )
    }
}

/// BFS over the undirected join graph from any relation in `sources` to
/// `target`. Returns the path as (relation, edge-into-it) pairs, excluding
/// the source endpoint.
fn shortest_path(
    graph: &SchemaGraph,
    sources: &[RelationId],
    target: RelationId,
) -> Option<Vec<(RelationId, usize)>> {
    let mut prev: HashMap<RelationId, (RelationId, usize)> = HashMap::new();
    let mut queue: VecDeque<RelationId> = sources.iter().copied().collect();
    let mut seen: BTreeSet<RelationId> = sources.iter().copied().collect();
    while let Some(rel) = queue.pop_front() {
        if rel == target {
            let mut path = Vec::new();
            let mut cur = rel;
            while let Some(&(p, e)) = prev.get(&cur) {
                path.push((cur, e));
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for (i, j) in graph.join_edges().iter().enumerate() {
            for (a, b) in [(j.from, j.to), (j.to, j.from)] {
                if a == rel && seen.insert(b) {
                    prev.insert(b, (rel, i));
                    queue.push_back(b);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::{DataType, DatabaseSchema, ForeignKey, RelationSchema};

    /// A — B — C chain plus isolated D.
    fn graph() -> SchemaGraph {
        let mut s = DatabaseSchema::new("d");
        for name in ["A", "B", "C", "D"] {
            let mut b = RelationSchema::builder(name)
                .attr_not_null("id", DataType::Int)
                .primary_key("id");
            if name == "B" {
                b = b.attr("a_id", DataType::Int);
            }
            if name == "C" {
                b = b.attr("b_id", DataType::Int);
            }
            s.add_relation(b.build().unwrap()).unwrap();
        }
        s.add_foreign_key(ForeignKey::new("B", "a_id", "A", "id"))
            .unwrap();
        s.add_foreign_key(ForeignKey::new("C", "b_id", "B", "id"))
            .unwrap();
        SchemaGraph::from_foreign_keys(s, 0.8, 0.5, 0.9).unwrap()
    }

    fn rid(g: &SchemaGraph, n: &str) -> RelationId {
        g.schema().relation_id(n).unwrap()
    }

    #[test]
    fn single_terminal_is_a_leaf_tree() {
        let g = graph();
        let t = JoinTree::connect(&g, &[rid(&g, "A")], 5).unwrap();
        assert_eq!(t.relations(), &[rid(&g, "A")]);
        assert_eq!(t.join_count(), 0);
    }

    #[test]
    fn connects_distant_terminals_via_bridge() {
        let g = graph();
        let t = JoinTree::connect(&g, &[rid(&g, "A"), rid(&g, "C")], 5).unwrap();
        assert_eq!(t.relations().len(), 3, "A, bridge B, C");
        assert_eq!(t.join_count(), 2);
        let neighbors = t.neighbors(&g, rid(&g, "B"));
        assert_eq!(neighbors.len(), 2);
    }

    #[test]
    fn size_cap_rejects_large_trees() {
        let g = graph();
        assert!(JoinTree::connect(&g, &[rid(&g, "A"), rid(&g, "C")], 2).is_none());
    }

    #[test]
    fn disconnected_terminals_fail() {
        let g = graph();
        assert!(JoinTree::connect(&g, &[rid(&g, "A"), rid(&g, "D")], 9).is_none());
    }

    #[test]
    fn duplicate_terminals_collapse() {
        let g = graph();
        let a = rid(&g, "A");
        let t = JoinTree::connect(&g, &[a, a, a], 5).unwrap();
        assert_eq!(t.relations(), &[a]);
        assert!(JoinTree::connect(&g, &[], 5).is_none());
    }

    #[test]
    fn canonical_key_ignores_discovery_order() {
        let g = graph();
        let t1 = JoinTree::connect(&g, &[rid(&g, "A"), rid(&g, "C")], 5).unwrap();
        let t2 = JoinTree::connect(&g, &[rid(&g, "C"), rid(&g, "A")], 5).unwrap();
        assert_eq!(t1.canonical_key(), t2.canonical_key());
    }
}
