//! Keyword-search evaluation: enumerate join trees, evaluate each into
//! flattened rows, rank by join count.

use crate::join_tree::JoinTree;
use precis_graph::SchemaGraph;
use precis_index::InvertedIndex;
use precis_storage::{Database, RelationId, TupleId, Value};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One flattened result row: the participating tuples and their
/// concatenated attribute values, in tree-discovery order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatRow {
    pub tuples: Vec<(RelationId, TupleId)>,
    pub values: Vec<Value>,
}

/// All rows produced by one join tree.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineAnswer {
    pub tree: JoinTree,
    pub rows: Vec<FlatRow>,
}

impl BaselineAnswer {
    /// Ranking score: fewer joins rank higher (DBXplorer's criterion).
    pub fn score(&self) -> usize {
        self.tree.join_count()
    }
}

use precis_index::tokenize;

/// IR-style relevance of one flattened row (the Related Work's [9]
/// "IR-style answer-relevance ranking"): for every token matched by a tuple
/// of the row, add `idf(token) / words(matching value)` — rare tokens in
/// short fields score highest.
fn row_relevance(db: &Database, index: &InvertedIndex, row: &FlatRow, tokens: &[&str]) -> f64 {
    let mut score = 0.0;
    for token in tokens {
        let words = tokenize(token);
        if words.is_empty() {
            continue;
        }
        let idf = index.idf(token);
        let mut best: Option<usize> = None; // shortest matching value, in words
        for &(rel, tid) in &row.tuples {
            let Some(t) = db.table(rel).get(tid) else {
                continue;
            };
            for v in t.values() {
                let Some(text) = v.as_text() else { continue };
                let vw = tokenize(text);
                if vw.windows(words.len()).any(|w| w == words) {
                    best = Some(best.map_or(vw.len(), |b| b.min(vw.len())));
                }
            }
        }
        if let Some(len) = best {
            score += idf / len.max(1) as f64;
        }
    }
    score
}

/// DISCOVER/DBXplorer-style keyword search over a database.
#[derive(Debug, Clone, Copy)]
pub struct KeywordSearch<'a> {
    db: &'a Database,
    graph: &'a SchemaGraph,
    index: &'a InvertedIndex,
}

impl<'a> KeywordSearch<'a> {
    pub fn new(db: &'a Database, graph: &'a SchemaGraph, index: &'a InvertedIndex) -> Self {
        KeywordSearch { db, graph, index }
    }

    /// Answer a keyword query: every distinct join tree of at most
    /// `max_tree_size` relations that connects one occurrence relation per
    /// token, evaluated to at most `max_rows` flattened rows each, sorted by
    /// ascending join count.
    ///
    /// Returns an empty vector when any token has no occurrences (all
    /// keywords must match, the standard AND semantics).
    pub fn search(
        &self,
        tokens: &[&str],
        max_tree_size: usize,
        max_rows: usize,
    ) -> Vec<BaselineAnswer> {
        if tokens.is_empty() {
            return Vec::new();
        }
        // Token → (relation → matching tids).
        let mut token_tids: Vec<HashMap<RelationId, BTreeSet<TupleId>>> = Vec::new();
        for t in tokens {
            let mut by_rel: HashMap<RelationId, BTreeSet<TupleId>> = HashMap::new();
            for occ in self.index.lookup(self.db, t) {
                by_rel.entry(occ.rel).or_default().extend(occ.tids.iter());
            }
            if by_rel.is_empty() {
                return Vec::new();
            }
            token_tids.push(by_rel);
        }

        // Enumerate assignments token → relation (cartesian product).
        let mut answers: Vec<BaselineAnswer> = Vec::new();
        let mut seen_trees: HashSet<(BTreeSet<RelationId>, BTreeSet<usize>)> = HashSet::new();
        let candidate_rels: Vec<Vec<RelationId>> = token_tids
            .iter()
            .map(|m| {
                let mut v: Vec<RelationId> = m.keys().copied().collect();
                v.sort_unstable();
                v
            })
            .collect();
        let mut assignment = vec![0usize; tokens.len()];
        loop {
            let terminals: Vec<RelationId> = assignment
                .iter()
                .enumerate()
                .map(|(t, &i)| candidate_rels[t][i])
                .collect();
            if let Some(tree) = JoinTree::connect(self.graph, &terminals, max_tree_size) {
                if seen_trees.insert(tree.canonical_key()) {
                    let rows = self.evaluate(&tree, &terminals, &token_tids, max_rows);
                    if !rows.is_empty() {
                        answers.push(BaselineAnswer { tree, rows });
                    }
                }
            }
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == assignment.len() {
                    answers.sort_by_key(BaselineAnswer::score);
                    return answers;
                }
                assignment[pos] += 1;
                if assignment[pos] < candidate_rels[pos].len() {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
        }
    }

    /// As [`KeywordSearch::search`], additionally sorting each answer's rows
    /// by descending IR relevance (rare tokens in short fields first) and
    /// breaking answer-level join-count ties by their best row's relevance —
    /// the hybrid of DBXplorer's structural ranking with [9]'s IR-style
    /// ranking.
    pub fn search_ranked(
        &self,
        tokens: &[&str],
        max_tree_size: usize,
        max_rows: usize,
    ) -> Vec<BaselineAnswer> {
        let mut answers = self.search(tokens, max_tree_size, max_rows);
        let mut best: Vec<f64> = Vec::with_capacity(answers.len());
        for a in &mut answers {
            let mut scored: Vec<(f64, FlatRow)> = a
                .rows
                .drain(..)
                .map(|r| (row_relevance(self.db, self.index, &r, tokens), r))
                .collect();
            scored.sort_by(|x, y| y.0.total_cmp(&x.0));
            best.push(scored.first().map(|(s, _)| *s).unwrap_or(0.0));
            a.rows = scored.into_iter().map(|(_, r)| r).collect();
        }
        let mut order: Vec<usize> = (0..answers.len()).collect();
        order.sort_by(|&i, &j| {
            answers[i]
                .score()
                .cmp(&answers[j].score())
                .then_with(|| best[j].total_cmp(&best[i]))
        });
        let mut answers: Vec<Option<BaselineAnswer>> = answers.into_iter().map(Some).collect();
        order
            .into_iter()
            .map(|i| answers[i].take().expect("each index used once"))
            .collect()
    }

    /// Evaluate a join tree: backtracking enumeration of joining tuple
    /// combinations, with token-relations restricted to their matching tids.
    fn evaluate(
        &self,
        tree: &JoinTree,
        terminals: &[RelationId],
        token_tids: &[HashMap<RelationId, BTreeSet<TupleId>>],
        max_rows: usize,
    ) -> Vec<FlatRow> {
        // Constraint per relation: intersection of the tid sets of every
        // token assigned to it.
        let mut constraint: HashMap<RelationId, BTreeSet<TupleId>> = HashMap::new();
        for (t, &rel) in terminals.iter().enumerate() {
            let tids = &token_tids[t][&rel];
            constraint
                .entry(rel)
                .and_modify(|s| *s = s.intersection(tids).copied().collect())
                .or_insert_with(|| tids.clone());
        }

        let order = tree.relations().to_vec();
        let mut rows = Vec::new();
        let mut partial: Vec<(RelationId, TupleId)> = Vec::new();
        self.backtrack(tree, &order, &constraint, &mut partial, &mut rows, max_rows);
        rows
    }

    fn backtrack(
        &self,
        tree: &JoinTree,
        order: &[RelationId],
        constraint: &HashMap<RelationId, BTreeSet<TupleId>>,
        partial: &mut Vec<(RelationId, TupleId)>,
        rows: &mut Vec<FlatRow>,
        max_rows: usize,
    ) {
        if rows.len() >= max_rows {
            return;
        }
        let depth = partial.len();
        if depth == order.len() {
            let values: Vec<Value> = partial
                .iter()
                .flat_map(|&(rel, tid)| {
                    self.db
                        .table(rel)
                        .get(tid)
                        .map(|t| t.values().to_vec())
                        .unwrap_or_default()
                })
                .collect();
            rows.push(FlatRow {
                tuples: partial.clone(),
                values,
            });
            return;
        }
        let rel = order[depth];
        // Candidates: joinable with every already-assigned neighbor.
        let neighbor_filters: Vec<(usize, TupleId, bool)> = tree
            .neighbors(self.graph, rel)
            .into_iter()
            .filter_map(|(other, edge)| {
                partial.iter().find(|&&(r, _)| r == other).map(|&(_, tid)| {
                    let e = self.graph.join_edge(edge);
                    // true ⇔ `rel` is the edge's `from` side.
                    (edge, tid, e.from == rel)
                })
            })
            .collect();

        let candidates: Vec<TupleId> =
            if let Some((edge, anchor_tid, rel_is_from)) = neighbor_filters.first().copied() {
                let e = self.graph.join_edge(edge);
                let (anchor_rel, anchor_attr, own_attr) = if rel_is_from {
                    (e.to, e.to_attr, e.from_attr)
                } else {
                    (e.from, e.from_attr, e.to_attr)
                };
                let Some(anchor) = self.db.table(anchor_rel).get(anchor_tid) else {
                    return;
                };
                let v = anchor.datum(anchor_attr);
                if v.is_null() {
                    return;
                }
                match self.db.lookup_datum(rel, own_attr, v) {
                    Ok(tids) => tids.to_vec(),
                    Err(_) => self
                        .db
                        .table(rel)
                        .iter()
                        .filter(|(_, t)| t.datum(own_attr) == v)
                        .map(|(tid, _)| tid)
                        .collect(),
                }
            } else {
                // First relation of the tree: start from its constrained tids,
                // or scan if unconstrained (non-terminal roots are rare).
                match constraint.get(&rel) {
                    Some(tids) => tids.iter().copied().collect(),
                    None => self.db.table(rel).iter().map(|(tid, _)| tid).collect(),
                }
            };

        'cand: for tid in candidates {
            if let Some(allowed) = constraint.get(&rel) {
                if !allowed.contains(&tid) {
                    continue;
                }
            }
            // Check the remaining neighbor joins.
            for &(edge, anchor_tid, rel_is_from) in neighbor_filters.iter().skip(1) {
                let e = self.graph.join_edge(edge);
                let (anchor_rel, anchor_attr, own_attr) = if rel_is_from {
                    (e.to, e.to_attr, e.from_attr)
                } else {
                    (e.from, e.from_attr, e.to_attr)
                };
                let (Some(a), Some(b)) = (
                    self.db.table(anchor_rel).get(anchor_tid),
                    self.db.table(rel).get(tid),
                ) else {
                    continue 'cand;
                };
                if a.datum(anchor_attr) != b.datum(own_attr) {
                    continue 'cand;
                }
            }
            partial.push((rel, tid));
            self.backtrack(tree, order, constraint, partial, rows, max_rows);
            partial.pop();
            if rows.len() >= max_rows {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_storage::{DataType, DatabaseSchema, ForeignKey, RelationSchema};

    /// DIRECTOR ← MOVIE with Woody Allen directing two films.
    fn setup() -> (Database, SchemaGraph, InvertedIndex) {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("DIRECTOR")
                .attr_not_null("did", DataType::Int)
                .attr("dname", DataType::Text)
                .primary_key("did")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_relation(
            RelationSchema::builder("MOVIE")
                .attr_not_null("mid", DataType::Int)
                .attr("title", DataType::Text)
                .attr("did", DataType::Int)
                .primary_key("mid")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_foreign_key(ForeignKey::new("MOVIE", "did", "DIRECTOR", "did"))
            .unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert("DIRECTOR", vec![1.into(), "Woody Allen".into()])
            .unwrap();
        db.insert("DIRECTOR", vec![2.into(), "Sofia Coppola".into()])
            .unwrap();
        db.insert("MOVIE", vec![1.into(), "Match Point".into(), 1.into()])
            .unwrap();
        db.insert("MOVIE", vec![2.into(), "Anything Else".into(), 1.into()])
            .unwrap();
        db.insert(
            "MOVIE",
            vec![3.into(), "Lost in Translation".into(), 2.into()],
        )
        .unwrap();
        let g = SchemaGraph::from_foreign_keys(db.schema().clone(), 0.8, 0.5, 0.9).unwrap();
        let idx = InvertedIndex::build(&db);
        (db, g, idx)
    }

    #[test]
    fn single_keyword_returns_zero_join_answer() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        let answers = ks.search(&["woody"], 3, 100);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].score(), 0);
        assert_eq!(answers[0].rows.len(), 1);
        assert!(answers[0].rows[0]
            .values
            .iter()
            .any(|v| v.as_text() == Some("Woody Allen")));
    }

    #[test]
    fn two_keywords_connect_across_a_join() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        let answers = ks.search(&["woody", "match"], 3, 100);
        assert!(!answers.is_empty());
        let best = &answers[0];
        assert_eq!(best.score(), 1, "one join connects DIRECTOR and MOVIE");
        assert_eq!(best.rows.len(), 1);
        let row = &best.rows[0];
        assert_eq!(row.tuples.len(), 2);
        let text: Vec<&str> = row.values.iter().filter_map(|v| v.as_text()).collect();
        assert!(text.contains(&"Woody Allen"));
        assert!(text.contains(&"Match Point"));
    }

    #[test]
    fn join_semantics_filter_non_joining_pairs() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        // "woody" and "translation" never join: Coppola directed it.
        let answers = ks.search(&["woody", "translation"], 3, 100);
        assert!(answers.iter().all(|a| a.rows.is_empty()) || answers.is_empty());
    }

    #[test]
    fn missing_keyword_yields_no_answers() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        assert!(ks.search(&["woody", "zzzzz"], 3, 100).is_empty());
        assert!(ks.search(&[], 3, 100).is_empty());
    }

    #[test]
    fn max_rows_caps_enumeration() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        // "woody" + "point|else" style: both movies join Allen; cap at 1.
        let answers = ks.search(&["allen"], 3, 1);
        assert_eq!(answers[0].rows.len(), 1);
    }

    #[test]
    fn ir_ranking_prefers_rare_tokens_in_short_fields() {
        let mut s = DatabaseSchema::new("d");
        s.add_relation(
            RelationSchema::builder("DOC")
                .attr_not_null("id", DataType::Int)
                .attr("body", DataType::Text)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db = Database::new(s).unwrap();
        // Same token, one short field and one long field.
        db.insert("DOC", vec![1.into(), "unique".into()]).unwrap();
        db.insert(
            "DOC",
            vec![
                2.into(),
                "unique word inside a much longer body of text here".into(),
            ],
        )
        .unwrap();
        let g = SchemaGraph::from_foreign_keys(db.schema().clone(), 0.8, 0.5, 0.9).unwrap();
        let idx = InvertedIndex::build(&db);
        let ks = KeywordSearch::new(&db, &g, &idx);
        let answers = ks.search_ranked(&["unique"], 2, 10);
        assert_eq!(answers.len(), 1);
        let rows = &answers[0].rows;
        assert_eq!(rows.len(), 2);
        // The short-field match ranks first.
        assert_eq!(rows[0].tuples[0].1, precis_storage::TupleId(0));
    }

    #[test]
    fn ranked_search_preserves_answer_content() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        let plain = ks.search(&["woody", "match"], 3, 100);
        let ranked = ks.search_ranked(&["woody", "match"], 3, 100);
        assert_eq!(plain.len(), ranked.len());
        let plain_rows: usize = plain.iter().map(|a| a.rows.len()).sum();
        let ranked_rows: usize = ranked.iter().map(|a| a.rows.len()).sum();
        assert_eq!(plain_rows, ranked_rows);
        for w in ranked.windows(2) {
            assert!(w[0].score() <= w[1].score());
        }
    }

    #[test]
    fn answers_are_ranked_by_join_count() {
        let (db, g, idx) = setup();
        let ks = KeywordSearch::new(&db, &g, &idx);
        // "allen" occurs only in DIRECTOR; "point" only in MOVIE: the only
        // tree has 1 join. "allen point" vs single-keyword check ordering
        // across a multi-answer query instead:
        let answers = ks.search(&["woody", "allen"], 3, 100);
        for w in answers.windows(2) {
            assert!(w[0].score() <= w[1].score());
        }
    }
}
