//! The designer-provided vocabulary: heading attributes, node labels,
//! template labels and macros (paper §5.3).

use crate::error::NlgError;
use crate::template::Template;
use crate::Result;
use precis_storage::RelationId;
use std::collections::HashMap;

/// Everything the translator needs to verbalize a schema: which attribute
/// *heads* each relation, how relation and join clauses are phrased, and the
/// shared macro library.
///
/// Templates are registered as source strings and parsed eagerly so
/// configuration errors surface at setup time, not at query time.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    heading: HashMap<RelationId, usize>,
    relation_clause: HashMap<RelationId, Template>,
    join_clause: HashMap<(RelationId, RelationId), Template>,
    attr_label: HashMap<(RelationId, usize), String>,
    macros: HashMap<String, Template>,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare the heading attribute of a relation — "the value of at least
    /// one of its attributes that characterizes tuples of this relation".
    /// The edge connecting a heading attribute to its relation implicitly
    /// has weight 1 and is always present in a précis answer.
    pub fn set_heading(&mut self, rel: RelationId, attr: usize) -> &mut Self {
        self.heading.insert(rel, attr);
        self
    }

    pub fn heading(&self, rel: RelationId) -> Option<usize> {
        self.heading.get(&rel).copied()
    }

    /// Set the clause template rendered once per matching tuple of `rel`
    /// (e.g. `"@DNAME was born on @BDATE in @BLOCATION."`).
    pub fn set_relation_clause(&mut self, rel: RelationId, template: &str) -> Result<&mut Self> {
        self.relation_clause.insert(rel, Template::parse(template)?);
        Ok(self)
    }

    pub fn relation_clause(&self, rel: RelationId) -> Option<&Template> {
        self.relation_clause.get(&rel)
    }

    /// Set the clause template for the join edge `from → to`, rendered once
    /// per source tuple with the joined destination tuples bound as lists.
    pub fn set_join_clause(
        &mut self,
        from: RelationId,
        to: RelationId,
        template: &str,
    ) -> Result<&mut Self> {
        self.join_clause
            .insert((from, to), Template::parse(template)?);
        Ok(self)
    }

    pub fn join_clause(&self, from: RelationId, to: RelationId) -> Option<&Template> {
        self.join_clause.get(&(from, to))
    }

    /// Override the template-variable name of an attribute (default: the
    /// attribute name upper-cased).
    pub fn set_attr_label(
        &mut self,
        rel: RelationId,
        attr: usize,
        label: impl Into<String>,
    ) -> &mut Self {
        self.attr_label.insert((rel, attr), label.into());
        self
    }

    pub fn attr_label(&self, rel: RelationId, attr: usize, default_name: &str) -> String {
        self.attr_label
            .get(&(rel, attr))
            .cloned()
            .unwrap_or_else(|| default_name.to_uppercase())
    }

    /// Define a named macro usable from any template as `%NAME%`.
    pub fn define_macro(&mut self, name: impl Into<String>, template: &str) -> Result<&mut Self> {
        let name = name.into();
        if !name.chars().all(|c| c.is_alphanumeric() || c == '_') || name.is_empty() {
            return Err(NlgError::Parse {
                template: template.to_owned(),
                message: format!("invalid macro name {name:?}"),
            });
        }
        self.macros.insert(name, Template::parse(template)?);
        Ok(self)
    }

    pub fn macros(&self) -> &HashMap<String, Template> {
        &self.macros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_lookup() {
        let r0 = RelationId(0);
        let r1 = RelationId(1);
        let mut v = Vocabulary::new();
        v.set_heading(r0, 1);
        v.set_relation_clause(r0, "@DNAME was born.").unwrap();
        v.set_join_clause(r0, r1, "work includes %LIST%").unwrap();
        v.define_macro("LIST", "@TITLE[*]").unwrap();
        v.set_attr_label(r0, 2, "BIRTHPLACE");

        assert_eq!(v.heading(r0), Some(1));
        assert!(v.relation_clause(r0).is_some());
        assert!(v.relation_clause(r1).is_none());
        assert!(v.join_clause(r0, r1).is_some());
        assert!(v.join_clause(r1, r0).is_none());
        assert_eq!(v.attr_label(r0, 2, "blocation"), "BIRTHPLACE");
        assert_eq!(v.attr_label(r0, 3, "bdate"), "BDATE");
        assert!(v.macros().contains_key("LIST"));
    }

    #[test]
    fn bad_templates_fail_at_registration() {
        let mut v = Vocabulary::new();
        assert!(v.set_relation_clause(RelationId(0), r"\").is_err());
        assert!(v.define_macro("bad name!", "x").is_err());
        assert!(v.define_macro("", "x").is_err());
    }
}
