//! # precis-nlg
//!
//! The **Translator** of the Précis system (paper §5.3): renders the
//! relational output of a précis query into a narrative synthesis of
//! results, "a proper structured management of individual results, according
//! to certain rules and templates predefined by a designer".
//!
//! Ingredients:
//!
//! * every relation has a **heading attribute** — the attribute whose value
//!   characterizes a tuple in prose (MOVIE's heading attribute is `title`);
//! * every projection and join edge may carry a **template label** that
//!   verbalizes the relationship between its endpoints;
//! * a small **template language** supports variables (`@TITLE`), indexing
//!   (`@TITLE[$i$]`), joining (`@GENRE[*]`), the `arityof` function, loop
//!   sections (`[i<arityof(@TITLE)]{…}`), and named macros (`%MOVIE_LIST%`)
//!   — mirroring the language sketched in the paper ("a simple language for
//!   templates that supports variables, loops, functions, and macros").
//!
//! The [`Translator`] walks a précis answer from each token occurrence
//! outward along the used join edges and emits one clause per template,
//! reproducing the paper's Woody Allen narrative.

mod error;
mod template;
mod translator;
mod vocabulary;

pub use error::NlgError;
pub use template::{Bindings, Template};
pub use translator::{Narrative, Translator};
pub use vocabulary::Vocabulary;

/// Result alias for translation.
pub type Result<T> = std::result::Result<T, NlgError>;
