//! Translator error type.

use std::fmt;

/// Errors raised while parsing or rendering templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NlgError {
    /// A template failed to parse.
    Parse { template: String, message: String },
    /// A template referenced a variable absent from the bindings.
    UnknownVariable(String),
    /// A template referenced an undefined macro.
    UnknownMacro(String),
    /// A loop variable was used outside its loop.
    UnknownLoopVariable(String),
    /// An indexed variable access was out of range.
    IndexOutOfRange { variable: String, index: usize },
    /// Macro expansion exceeded the recursion limit (cyclic macros).
    MacroRecursion(String),
}

impl fmt::Display for NlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NlgError::Parse { template, message } => {
                write!(f, "template parse error in {template:?}: {message}")
            }
            NlgError::UnknownVariable(v) => write!(f, "unknown template variable @{v}"),
            NlgError::UnknownMacro(m) => write!(f, "unknown macro %{m}%"),
            NlgError::UnknownLoopVariable(v) => write!(f, "loop variable ${v}$ not in scope"),
            NlgError::IndexOutOfRange { variable, index } => {
                write!(f, "index {index} out of range for @{variable}")
            }
            NlgError::MacroRecursion(m) => write!(f, "macro recursion involving %{m}%"),
        }
    }
}

impl std::error::Error for NlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(NlgError::UnknownVariable("TITLE".into())
            .to_string()
            .contains("@TITLE"));
        assert!(NlgError::UnknownMacro("M".into())
            .to_string()
            .contains("%M%"));
        let e = NlgError::IndexOutOfRange {
            variable: "X".into(),
            index: 4,
        };
        assert!(e.to_string().contains('4'));
    }
}
