//! The template language: parser and renderer.
//!
//! Grammar (informal):
//!
//! ```text
//! template  ::= item*
//! item      ::= literal | variable | loop | macroref
//! variable  ::= '@' IDENT index?
//! index     ::= '[' '$' IDENT '$' ']'      -- loop-variable index (1-based)
//!             | '[' '*' ']'                -- join all values with ", "
//! loop      ::= '[' IDENT OP 'arityof(@' IDENT ')' ']' '{' template '}'
//! OP        ::= '<' | '<=' | '='
//! macroref  ::= '%' IDENT '%'
//! ```
//!
//! A backslash escapes the next character (`\@` is a literal `@`). Loop
//! variables count from 1, matching the paper's `[i<arityof(@TITLE)]` /
//! `[i=arityof(@TITLE)]` idiom for "all but the last element" / "the last
//! element".

use crate::error::NlgError;
use crate::Result;
use std::collections::HashMap;

const MACRO_DEPTH_LIMIT: usize = 16;

/// How a variable occurrence is indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VarIndex {
    /// `@X` — the first (or only) value.
    First,
    /// `@X[$i$]` — the value at 1-based loop-variable position.
    Loop(String),
    /// `@X[*]` — all values joined with `", "`.
    JoinAll,
}

/// Comparison operator of a loop header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopOp {
    Lt,
    Le,
    Eq,
}

/// One parsed template item.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    Literal(String),
    Var {
        name: String,
        index: VarIndex,
    },
    Loop {
        var: String,
        op: LoopOp,
        arity_of: String,
        body: Template,
    },
    MacroRef(String),
}

/// A parsed, reusable template.
///
/// ```
/// use precis_nlg::{Template, Bindings};
/// use std::collections::HashMap;
///
/// let mut b = Bindings::new();
/// b.set_scalar("DNAME", "Woody Allen");
/// b.set("TITLE", ["Match Point", "Anything Else"]);
/// b.set("YEAR", ["2005", "2003"]);
///
/// let t = Template::parse(
///     "@DNAME directed [i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }\
///      [i=arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]).}",
/// )?;
/// assert_eq!(
///     t.render(&b, &HashMap::new())?,
///     "Woody Allen directed Match Point (2005), Anything Else (2003)."
/// );
/// # Ok::<(), precis_nlg::NlgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    items: Vec<Item>,
}

/// Variable bindings for rendering: each variable names a list of values
/// (single-valued attributes bind one-element lists).
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    vars: HashMap<String, Vec<String>>,
}

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a variable to a list of values (replaces any previous binding).
    pub fn set<I, S>(&mut self, name: impl Into<String>, values: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.vars
            .insert(name.into(), values.into_iter().map(Into::into).collect());
    }

    /// Bind a single value.
    pub fn set_scalar(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.set(name, [value.into()]);
    }

    /// Bind only if the name is still free.
    pub fn set_if_absent(&mut self, name: &str, values: Vec<String>) {
        self.vars.entry(name.to_owned()).or_insert(values);
    }

    pub fn get(&self, name: &str) -> Option<&[String]> {
        self.vars.get(name).map(Vec::as_slice)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }
}

impl Template {
    /// Parse a template string.
    pub fn parse(source: &str) -> Result<Template> {
        let mut parser = Parser {
            src: source,
            chars: source.char_indices().peekable(),
        };
        let items = parser.parse_items(None)?;
        Ok(Template { items })
    }

    /// Render with `bindings` and `macros` (name → template source; macros
    /// are parsed lazily and may reference other macros).
    pub fn render(
        &self,
        bindings: &Bindings,
        macros: &HashMap<String, Template>,
    ) -> Result<String> {
        let mut out = String::new();
        self.render_into(&mut out, bindings, macros, &mut HashMap::new(), 0)?;
        Ok(out)
    }

    fn render_into(
        &self,
        out: &mut String,
        bindings: &Bindings,
        macros: &HashMap<String, Template>,
        loop_vars: &mut HashMap<String, usize>,
        depth: usize,
    ) -> Result<()> {
        for item in &self.items {
            match item {
                Item::Literal(s) => out.push_str(s),
                Item::Var { name, index } => {
                    let values = bindings
                        .get(name)
                        .ok_or_else(|| NlgError::UnknownVariable(name.clone()))?;
                    match index {
                        VarIndex::First => {
                            if let Some(v) = values.first() {
                                out.push_str(v);
                            }
                        }
                        VarIndex::JoinAll => {
                            for (i, v) in values.iter().enumerate() {
                                if i > 0 {
                                    out.push_str(", ");
                                }
                                out.push_str(v);
                            }
                        }
                        VarIndex::Loop(lv) => {
                            let i = *loop_vars
                                .get(lv)
                                .ok_or_else(|| NlgError::UnknownLoopVariable(lv.clone()))?;
                            let v = values.get(i - 1).ok_or(NlgError::IndexOutOfRange {
                                variable: name.clone(),
                                index: i,
                            })?;
                            out.push_str(v);
                        }
                    }
                }
                Item::Loop {
                    var,
                    op,
                    arity_of,
                    body,
                } => {
                    let arity = bindings
                        .get(arity_of)
                        .ok_or_else(|| NlgError::UnknownVariable(arity_of.clone()))?
                        .len();
                    let range: Vec<usize> = match op {
                        LoopOp::Lt => (1..arity).collect(),
                        LoopOp::Le => (1..=arity).collect(),
                        LoopOp::Eq => {
                            if arity >= 1 {
                                vec![arity]
                            } else {
                                vec![]
                            }
                        }
                    };
                    for i in range {
                        let prev = loop_vars.insert(var.clone(), i);
                        body.render_into(out, bindings, macros, loop_vars, depth)?;
                        match prev {
                            Some(p) => {
                                loop_vars.insert(var.clone(), p);
                            }
                            None => {
                                loop_vars.remove(var);
                            }
                        }
                    }
                }
                Item::MacroRef(name) => {
                    if depth >= MACRO_DEPTH_LIMIT {
                        return Err(NlgError::MacroRecursion(name.clone()));
                    }
                    let m = macros
                        .get(name)
                        .ok_or_else(|| NlgError::UnknownMacro(name.clone()))?;
                    m.render_into(out, bindings, macros, loop_vars, depth + 1)?;
                }
            }
        }
        Ok(())
    }

    /// Variables referenced by this template (not transitively through
    /// macros).
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a str>) {
            for item in items {
                match item {
                    Item::Var { name, .. } => out.push(name),
                    Item::Loop { arity_of, body, .. } => {
                        out.push(arity_of);
                        walk(&body.items, out);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.items, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

struct Parser<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> NlgError {
        NlgError::Parse {
            template: self.src.to_owned(),
            message: message.into(),
        }
    }

    /// Parse items until `stop` (a closing delimiter) or end of input.
    fn parse_items(&mut self, stop: Option<char>) -> Result<Vec<Item>> {
        let mut items = Vec::new();
        let mut literal = String::new();
        loop {
            match self.chars.peek().copied() {
                None => {
                    if let Some(s) = stop {
                        return Err(self.err(format!("expected {s:?} before end of template")));
                    }
                    break;
                }
                Some((_, c)) if Some(c) == stop => {
                    self.chars.next();
                    break;
                }
                Some((_, '\\')) => {
                    self.chars.next();
                    match self.chars.next() {
                        Some((_, c)) => literal.push(c),
                        None => return Err(self.err("dangling escape")),
                    }
                }
                Some((_, '@')) => {
                    flush(&mut literal, &mut items);
                    self.chars.next();
                    items.push(self.parse_var()?);
                }
                Some((_, '%')) => {
                    self.chars.next();
                    match self.try_parse_macro_ref() {
                        Some(name) => {
                            flush(&mut literal, &mut items);
                            items.push(Item::MacroRef(name));
                        }
                        None => literal.push('%'),
                    }
                }
                Some((pos, '[')) => {
                    self.chars.next();
                    match self.try_parse_loop(pos) {
                        Some(l) => {
                            flush(&mut literal, &mut items);
                            items.push(l?);
                        }
                        None => literal.push('['),
                    }
                }
                Some((_, c)) => {
                    self.chars.next();
                    literal.push(c);
                }
            }
        }
        flush(&mut literal, &mut items);
        return Ok(items);

        fn flush(literal: &mut String, items: &mut Vec<Item>) {
            if !literal.is_empty() {
                items.push(Item::Literal(std::mem::take(literal)));
            }
        }
    }

    fn parse_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        s
    }

    fn parse_var(&mut self) -> Result<Item> {
        let name = self.parse_ident();
        if name.is_empty() {
            return Err(self.err("expected identifier after '@'"));
        }
        // Optional index: [$i$] or [*] — anything else leaves the '['
        // untouched (it may start a literal or a loop).
        if let Some(&(pos, '[')) = self.chars.peek() {
            let rest = &self.src[pos..];
            if let Some(idx_end) = rest.find(']') {
                let inner = &rest[1..idx_end];
                if inner == "*" {
                    self.skip(idx_end + 1);
                    return Ok(Item::Var {
                        name,
                        index: VarIndex::JoinAll,
                    });
                }
                if inner.len() >= 3 && inner.starts_with('$') && inner.ends_with('$') {
                    let lv = &inner[1..inner.len() - 1];
                    if lv.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        self.skip(idx_end + 1);
                        return Ok(Item::Var {
                            name,
                            index: VarIndex::Loop(lv.to_owned()),
                        });
                    }
                }
            }
        }
        Ok(Item::Var {
            name,
            index: VarIndex::First,
        })
    }

    fn try_parse_macro_ref(&mut self) -> Option<String> {
        // Already consumed the opening '%'. Look ahead for IDENT '%'.
        let mut clone = self.chars.clone();
        let mut name = String::new();
        loop {
            match clone.peek() {
                Some(&(_, c)) if c.is_alphanumeric() || c == '_' => {
                    name.push(c);
                    clone.next();
                }
                Some(&(_, '%')) if !name.is_empty() => {
                    clone.next();
                    self.chars = clone;
                    return Some(name);
                }
                _ => return None,
            }
        }
    }

    /// Called after consuming '['. Tries to parse a loop header; `None`
    /// means "not a loop, treat '[' as literal". `pos` is the offset of the
    /// consumed '['.
    fn try_parse_loop(&mut self, pos: usize) -> Option<Result<Item>> {
        let rest = &self.src[pos..];
        let close = rest.find(']')?;
        let header = &rest[1..close];
        let (var, op, arity_of) = parse_loop_header(header)?;
        // The header must be followed by '{'.
        if !rest[close + 1..].starts_with('{') {
            return None;
        }
        // Commit: skip the header and ']' (the '[' is already consumed, so
        // the iterator sits one byte past `pos`), then consume '{' and parse
        // the body to '}'.
        self.skip(close);
        self.chars.next(); // '{'
        let body = match self.parse_items(Some('}')) {
            Ok(items) => Template { items },
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Item::Loop {
            var,
            op,
            arity_of,
            body,
        }))
    }

    /// Advance the iterator `n` bytes past its current position start.
    fn skip(&mut self, n: usize) {
        let Some(&(start, _)) = self.chars.peek() else {
            return;
        };
        let target = start + n;
        while let Some(&(pos, _)) = self.chars.peek() {
            if pos >= target {
                break;
            }
            self.chars.next();
        }
    }
}

/// Parse `i<arityof(@X)` style headers.
fn parse_loop_header(header: &str) -> Option<(String, LoopOp, String)> {
    let header = header.trim();
    let (var, rest, op) = if let Some(p) = header.find("<=") {
        (&header[..p], &header[p + 2..], LoopOp::Le)
    } else if let Some(p) = header.find('<') {
        (&header[..p], &header[p + 1..], LoopOp::Lt)
    } else if let Some(p) = header.find('=') {
        (&header[..p], &header[p + 1..], LoopOp::Eq)
    } else {
        return None;
    };
    let var = var.trim();
    if var.is_empty() || !var.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix("arityof(@")?.strip_suffix(')')?;
    if inner.is_empty() || !inner.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((var.to_owned(), op, inner.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(src: &str, bind: &Bindings) -> Result<String> {
        Template::parse(src)?.render(bind, &HashMap::new())
    }

    fn movie_bindings() -> Bindings {
        let mut b = Bindings::new();
        b.set(
            "TITLE",
            ["Match Point", "Melinda and Melinda", "Anything Else"],
        );
        b.set("YEAR", ["2005", "2004", "2003"]);
        b.set_scalar("DNAME", "Woody Allen");
        b
    }

    #[test]
    fn literals_and_scalars() {
        let b = movie_bindings();
        assert_eq!(
            render("@DNAME was born.", &b).unwrap(),
            "Woody Allen was born."
        );
        assert_eq!(render("plain text", &b).unwrap(), "plain text");
    }

    #[test]
    fn unindexed_multivalue_takes_first() {
        let b = movie_bindings();
        assert_eq!(render("@TITLE", &b).unwrap(), "Match Point");
    }

    #[test]
    fn join_all_comma_separates() {
        let b = movie_bindings();
        assert_eq!(
            render("@TITLE[*]", &b).unwrap(),
            "Match Point, Melinda and Melinda, Anything Else"
        );
    }

    #[test]
    fn paper_movie_list_macro() {
        // The MOVIE_LIST macro from §5.3.
        let mut macros = HashMap::new();
        macros.insert(
            "MOVIE_LIST".to_owned(),
            Template::parse(
                "[i<arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]), }[i=arityof(@TITLE)]{@TITLE[$i$] (@YEAR[$i$]).}",
            )
            .unwrap(),
        );
        let t = Template::parse("As a director, @DNAME's work includes %MOVIE_LIST%").unwrap();
        let out = t.render(&movie_bindings(), &macros).unwrap();
        assert_eq!(
            out,
            "As a director, Woody Allen's work includes Match Point (2005), \
             Melinda and Melinda (2004), Anything Else (2003)."
        );
    }

    #[test]
    fn loop_le_covers_all_elements() {
        let b = movie_bindings();
        assert_eq!(
            render("[i<=arityof(@YEAR)]{<@YEAR[$i$]>}", &b).unwrap(),
            "<2005><2004><2003>"
        );
    }

    #[test]
    fn loop_over_empty_list_renders_nothing() {
        let mut b = Bindings::new();
        b.set("X", Vec::<String>::new());
        assert_eq!(render("[i<=arityof(@X)]{@X[$i$]}", &b).unwrap(), "");
        assert_eq!(render("[i=arityof(@X)]{@X[$i$]}", &b).unwrap(), "");
        // Unindexed read of an empty list renders nothing rather than erroring.
        assert_eq!(render("<@X>", &b).unwrap(), "<>");
    }

    #[test]
    fn escapes_and_literal_brackets() {
        let b = movie_bindings();
        assert_eq!(render(r"100\% \@home", &b).unwrap(), "100% @home");
        assert_eq!(render("a [not a loop] b", &b).unwrap(), "a [not a loop] b");
        assert_eq!(render("50% off", &b).unwrap(), "50% off");
    }

    #[test]
    fn errors_are_specific() {
        let b = movie_bindings();
        assert!(matches!(
            render("@MISSING", &b),
            Err(NlgError::UnknownVariable(_))
        ));
        assert!(matches!(
            render("%NOPE%", &b),
            Err(NlgError::UnknownMacro(_))
        ));
        assert!(matches!(
            render("@TITLE[$i$]", &b),
            Err(NlgError::UnknownLoopVariable(_))
        ));
        assert!(matches!(render(r"\", &b), Err(NlgError::Parse { .. })));
        assert!(matches!(
            render("[i<=arityof(@TITLE)]{unclosed", &b),
            Err(NlgError::Parse { .. })
        ));
        assert!(matches!(render("@", &b), Err(NlgError::Parse { .. })));
    }

    #[test]
    fn macro_recursion_is_detected() {
        let mut macros = HashMap::new();
        macros.insert("A".to_owned(), Template::parse("%B%").unwrap());
        macros.insert("B".to_owned(), Template::parse("%A%").unwrap());
        let t = Template::parse("%A%").unwrap();
        assert!(matches!(
            t.render(&Bindings::new(), &macros),
            Err(NlgError::MacroRecursion(_))
        ));
    }

    #[test]
    fn nested_loops_shadow_and_restore() {
        let mut b = Bindings::new();
        b.set("X", ["a", "b"]);
        b.set("Y", ["1", "2"]);
        let out = render("[i<=arityof(@X)]{@X[$i$]([i<=arityof(@Y)]{@Y[$i$]})}", &b).unwrap();
        assert_eq!(out, "a(12)b(12)");
        // Same loop var nested: inner shadows, outer restored.
        let out = render("[i<=arityof(@X)]{[i<=arityof(@Y)]{@Y[$i$]}@X[$i$]}", &b).unwrap();
        assert_eq!(out, "12a12b");
    }

    #[test]
    fn variables_lists_references() {
        let t = Template::parse("@A [i<=arityof(@B)]{@C[$i$]}").unwrap();
        assert_eq!(t.variables(), vec!["A", "B", "C"]);
    }

    #[test]
    fn bindings_api() {
        let mut b = Bindings::new();
        b.set_scalar("X", "1");
        b.set_if_absent("X", vec!["2".into()]);
        assert_eq!(b.get("X").unwrap(), &["1".to_owned()]);
        b.set_if_absent("Y", vec!["3".into()]);
        assert!(b.contains("Y"));
        assert!(!b.contains("Z"));
    }
}
