//! The translator: walks a précis answer outward from each token occurrence
//! and composes clause templates into a narrative (paper §5.3).
//!
//! "The translation is realized separately for every occurrence of a token…
//! the analysis of the query result graph starts from the relation that
//! contains the input token. The labels of the projection edges… are
//! evaluated first… After having constructed the clause for the relation
//! that contains the input token, we compose additional clauses that combine
//! information from more than one relation by using foreign key
//! relationships."
//!
//! Relations without a heading attribute (pure bridges such as CAST) are
//! *transparent*: no clause is emitted at them and their join label — per the
//! paper — "signifies the relationship between the previous and subsequent
//! relations", rendered once with the bindings inherited from the previous
//! non-transparent relation.

use crate::template::Bindings;
use crate::vocabulary::Vocabulary;
use crate::Result;
use precis_core::{PrecisAnswer, PrecisDatabase, ResultSchema};
use precis_graph::SchemaGraph;
use precis_storage::{Database, RelationId, TupleId};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Cap on recursion depth (paths in the used-edge graph are acyclic per
/// narrative, but the cap keeps pathological vocabularies safe).
const MAX_DEPTH: usize = 32;

/// One rendered narrative: the précis for one occurrence of one token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Narrative {
    /// The query token this narrative answers.
    pub token: String,
    /// Name of the relation the token was found in (homonyms — e.g. Woody
    /// Allen the director vs. the actor — yield one narrative each, as the
    /// paper prescribes "in absence of any information that both instance
    /// values refer to the same physical entity").
    pub relation: String,
    /// The synthesized text.
    pub text: String,
}

/// Renders précis answers as narratives using a designer [`Vocabulary`].
#[derive(Debug, Clone, Copy)]
pub struct Translator<'a> {
    db: &'a Database,
    graph: &'a SchemaGraph,
    vocab: &'a Vocabulary,
    /// When a relation or join has no designer template, emit a generic
    /// mechanical clause instead of staying silent.
    generic_fallback: bool,
}

impl<'a> Translator<'a> {
    /// `db` and `graph` must be the original database and schema graph the
    /// answer was computed against.
    pub fn new(db: &'a Database, graph: &'a SchemaGraph, vocab: &'a Vocabulary) -> Self {
        Translator {
            db,
            graph,
            vocab,
            generic_fallback: false,
        }
    }

    /// Enable generic clauses for relations/joins the vocabulary does not
    /// cover: `"DIRECTOR: dname = Woody Allen; bdate = …"` — clunky but
    /// complete, so *any* schema gets a narrative without a designer.
    pub fn with_generic_fallback(mut self) -> Self {
        self.generic_fallback = true;
        self
    }

    /// Translate a full answer: one narrative per token occurrence per
    /// surviving seed tuple, in occurrence order.
    pub fn translate(&self, answer: &PrecisAnswer) -> Result<Vec<Narrative>> {
        let mut out = Vec::new();
        for (token, rel, tid) in surviving_occurrences(answer) {
            out.push(self.narrate_one(answer, token, rel, tid)?);
        }
        Ok(out)
    }

    /// As [`Translator::translate`], but homonym narratives come best-first:
    /// seeds with more (weighted) connected information in the answer rank
    /// higher — see [`precis_core::rank_seeds`].
    pub fn translate_ranked(&self, answer: &PrecisAnswer) -> Result<Vec<Narrative>> {
        let ranked = precis_core::rank_seeds(self.db, self.graph, &answer.schema, &answer.precis);
        let mut occurrences = surviving_occurrences(answer);
        occurrences.sort_by_key(|&(_, rel, tid)| {
            ranked
                .iter()
                .position(|r| r.rel == rel && r.tid == tid)
                .unwrap_or(usize::MAX)
        });
        let mut out = Vec::new();
        for (token, rel, tid) in occurrences {
            out.push(self.narrate_one(answer, token, rel, tid)?);
        }
        Ok(out)
    }

    fn narrate_one(
        &self,
        answer: &PrecisAnswer,
        token: &str,
        rel: RelationId,
        tid: TupleId,
    ) -> Result<Narrative> {
        let text = self.narrate(&answer.schema, &answer.precis, rel, tid)?;
        Ok(Narrative {
            token: token.to_owned(),
            relation: self.db.schema().relation(rel).name().to_owned(),
            text,
        })
    }

    /// Build the narrative for one seed tuple: the origin relation's clause,
    /// then one clause per (source tuple, used join edge), breadth first —
    /// relations closer to the token are verbalized before distant ones, and
    /// each relation is narrated through the closest used edge only.
    pub fn narrate(
        &self,
        schema: &ResultSchema,
        precis: &PrecisDatabase,
        origin: RelationId,
        seed: TupleId,
    ) -> Result<String> {
        let mut clauses: Vec<String> = Vec::new();

        let mut origin_ctx = Bindings::new();
        self.bind_tuple_scalars(&mut origin_ctx, precis, origin, seed);
        if let Some(t) = self.vocab.relation_clause(origin) {
            clauses.push(t.render(&origin_ctx, self.vocab.macros())?);
        } else if self.generic_fallback {
            if let Some(c) = self.generic_relation_clause(precis, origin, seed) {
                clauses.push(c);
            }
        }

        // Breadth-first over relations. Each relation carries *groups*: a
        // tuple list plus the bindings inherited from the source tuple that
        // reached it, so per-source clauses ("Match Point is Drama,
        // Thriller.") keep their own context.
        let mut scheduled: BTreeSet<RelationId> = BTreeSet::new();
        scheduled.insert(origin);
        let mut groups: HashMap<RelationId, Vec<(Vec<TupleId>, Bindings)>> = HashMap::new();
        groups.insert(origin, vec![(vec![seed], origin_ctx)]);
        let mut queue: VecDeque<(RelationId, usize)> = VecDeque::new();
        queue.push_back((origin, 0));

        while let Some((rel, depth)) = queue.pop_front() {
            if depth >= MAX_DEPTH {
                continue;
            }
            let Some(rel_groups) = groups.remove(&rel) else {
                continue;
            };
            // Bridges without a heading attribute are transparent: their
            // join label "signifies the relationship between the previous
            // and subsequent relations", rendered once per group with the
            // inherited bindings.
            let transparent = self.vocab.heading(rel).is_none() && rel != origin;

            for edge in self.outgoing_used_edges(schema, origin, rel) {
                let e = self.graph.join_edge(edge);
                if scheduled.contains(&e.to) {
                    continue; // already narrated through a closer edge
                }
                let mut dest_groups: Vec<(Vec<TupleId>, Bindings)> = Vec::new();
                for (tuples, ctx) in &rel_groups {
                    if transparent {
                        let mut joined: Vec<TupleId> = Vec::new();
                        for &src in tuples {
                            for t in
                                self.joined_tuples(precis, rel, src, e.to, e.to_attr, e.from_attr)
                            {
                                if !joined.contains(&t) {
                                    joined.push(t);
                                }
                            }
                        }
                        if joined.is_empty() {
                            continue;
                        }
                        if let Some(template) = self.vocab.join_clause(e.from, e.to) {
                            let mut b = ctx.clone();
                            self.bind_tuple_lists(&mut b, precis, e.to, &joined);
                            clauses.push(template.render(&b, self.vocab.macros())?);
                        } else if self.generic_fallback {
                            if let Some(c) = self.generic_join_clause(precis, e.to, &joined) {
                                clauses.push(c);
                            }
                        }
                        dest_groups.push((joined, ctx.clone()));
                    } else {
                        for &src in tuples {
                            let joined =
                                self.joined_tuples(precis, rel, src, e.to, e.to_attr, e.from_attr);
                            if joined.is_empty() {
                                continue;
                            }
                            let mut context = ctx.clone();
                            self.bind_tuple_scalars(&mut context, precis, rel, src);
                            if let Some(template) = self.vocab.join_clause(e.from, e.to) {
                                let mut b = context.clone();
                                self.bind_tuple_lists(&mut b, precis, e.to, &joined);
                                clauses.push(template.render(&b, self.vocab.macros())?);
                            } else if self.generic_fallback {
                                if let Some(c) = self.generic_join_clause(precis, e.to, &joined) {
                                    clauses.push(c);
                                }
                            }
                            dest_groups.push((joined, context));
                        }
                    }
                }
                if !dest_groups.is_empty() {
                    scheduled.insert(e.to);
                    groups.insert(e.to, dest_groups);
                    queue.push_back((e.to, depth + 1));
                }
            }
        }

        Ok(clauses.join(" "))
    }

    /// Used join edges departing `rel` whose paths belong to `origin`,
    /// heaviest first.
    fn outgoing_used_edges(
        &self,
        schema: &ResultSchema,
        origin: RelationId,
        rel: RelationId,
    ) -> Vec<usize> {
        let mut edges: Vec<usize> = schema
            .used_joins()
            .iter()
            .filter(|u| u.origins.contains(&origin))
            .map(|u| u.edge)
            .filter(|&e| self.graph.join_edge(e).from == rel)
            .collect();
        edges.sort_by(|&a, &b| {
            self.graph
                .join_edge(b)
                .weight
                .total_cmp(&self.graph.join_edge(a).weight)
                .then(a.cmp(&b))
        });
        edges
    }

    /// Mechanical clause for a relation the vocabulary does not cover:
    /// `"DIRECTOR: dname = Woody Allen; bdate = December 1, 1935."`.
    fn generic_relation_clause(
        &self,
        precis: &PrecisDatabase,
        rel: RelationId,
        tid: TupleId,
    ) -> Option<String> {
        let t = self.db.table(rel).get(tid)?;
        let attrs = self.narratable_attrs(precis, rel);
        if attrs.is_empty() {
            return None;
        }
        let schema = self.db.schema().relation(rel);
        let parts: Vec<String> = attrs
            .iter()
            .map(|&a| format!("{} = {}", schema.attr_name(a), t.get(a)))
            .collect();
        Some(format!("{}: {}.", schema.name(), parts.join("; ")))
    }

    /// Mechanical clause for a join the vocabulary does not cover:
    /// `"Related MOVIE: Match Point (2005); Melinda and Melinda (2004)."`.
    fn generic_join_clause(
        &self,
        precis: &PrecisDatabase,
        dest: RelationId,
        joined: &[TupleId],
    ) -> Option<String> {
        let attrs = self.narratable_attrs(precis, dest);
        if attrs.is_empty() || joined.is_empty() {
            return None;
        }
        let schema = self.db.schema().relation(dest);
        let rows: Vec<String> = joined
            .iter()
            .filter_map(|tid| self.db.table(dest).get(*tid))
            .map(|t| {
                attrs
                    .iter()
                    .map(|&a| t.get(a).to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        Some(format!("Related {}: {}.", schema.name(), rows.join("; ")))
    }

    /// Collected tuples of `dest` joining to source tuple `src`.
    fn joined_tuples(
        &self,
        precis: &PrecisDatabase,
        src_rel: RelationId,
        src: TupleId,
        dest: RelationId,
        dest_attr: usize,
        src_attr: usize,
    ) -> Vec<TupleId> {
        let Some(source_tuple) = self.db.table(src_rel).get(src) else {
            return Vec::new();
        };
        let v = source_tuple.datum(src_attr);
        if v.is_null() {
            return Vec::new();
        }
        let Some(collected) = precis.collected.get(&dest) else {
            return Vec::new();
        };
        collected
            .iter()
            .copied()
            .filter(|tid| {
                self.db
                    .table(dest)
                    .get(*tid)
                    .is_some_and(|t| t.datum(dest_attr) == v)
            })
            .collect()
    }

    /// Bind the visible attributes (plus the heading attribute) of one tuple
    /// as scalars.
    fn bind_tuple_scalars(
        &self,
        b: &mut Bindings,
        precis: &PrecisDatabase,
        rel: RelationId,
        tid: TupleId,
    ) {
        let Some(t) = self.db.table(rel).get(tid) else {
            return;
        };
        for attr in self.narratable_attrs(precis, rel) {
            let label = self.attr_label(rel, attr);
            b.set_scalar(label, t.get(attr).to_string());
        }
    }

    /// Bind the visible attributes of a list of tuples as parallel lists.
    fn bind_tuple_lists(
        &self,
        b: &mut Bindings,
        precis: &PrecisDatabase,
        rel: RelationId,
        tids: &[TupleId],
    ) {
        for attr in self.narratable_attrs(precis, rel) {
            let label = self.attr_label(rel, attr);
            let values: Vec<String> = tids
                .iter()
                .filter_map(|tid| self.db.table(rel).get(*tid))
                .map(|t| t.get(attr).to_string())
                .collect();
            b.set(label, values);
        }
    }

    /// Attributes worth binding: the visible set of the answer plus the
    /// heading attribute (whose projection edge implicitly has weight 1 and
    /// "is always present in the result of a précis query").
    fn narratable_attrs(&self, precis: &PrecisDatabase, rel: RelationId) -> Vec<usize> {
        let mut attrs: Vec<usize> = precis.visible.get(&rel).cloned().unwrap_or_default();
        if let Some(h) = self.vocab.heading(rel) {
            if !attrs.contains(&h) {
                attrs.push(h);
            }
        }
        attrs
    }

    fn attr_label(&self, rel: RelationId, attr: usize) -> String {
        let name = self.db.schema().relation(rel).attr_name(attr);
        self.vocab.attr_label(rel, attr, name)
    }
}

/// Token occurrences that survived the cardinality cut, as
/// (token, relation, tid) triples in answer order.
fn surviving_occurrences(answer: &PrecisAnswer) -> Vec<(&str, RelationId, TupleId)> {
    let mut out = Vec::new();
    for m in &answer.matches {
        for occ in &m.occurrences {
            let Some(collected) = answer.precis.collected.get(&occ.rel) else {
                continue;
            };
            for tid in occ.tids.iter() {
                if collected.contains(tid) {
                    out.push((m.token.as_str(), occ.rel, *tid));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use precis_core::{
        generate_result_database, generate_result_schema, CardinalityConstraint, DbGenOptions,
        DegreeConstraint, PrecisEngine, PrecisQuery, RetrievalStrategy,
    };
    use precis_storage::{DataType, DatabaseSchema, ForeignKey, RelationSchema, Value};
    use std::collections::HashMap;

    /// AUTHOR ← BOOK, one author with two books.
    fn setup() -> (Database, SchemaGraph) {
        let mut s = DatabaseSchema::new("lib");
        s.add_relation(
            RelationSchema::builder("AUTHOR")
                .attr_not_null("aid", DataType::Int)
                .attr("name", DataType::Text)
                .primary_key("aid")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_relation(
            RelationSchema::builder("BOOK")
                .attr_not_null("bid", DataType::Int)
                .attr("title", DataType::Text)
                .attr("aid", DataType::Int)
                .primary_key("bid")
                .build()
                .unwrap(),
        )
        .unwrap();
        s.add_foreign_key(ForeignKey::new("BOOK", "aid", "AUTHOR", "aid"))
            .unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert("AUTHOR", vec![Value::from(1), Value::from("Le Guin")])
            .unwrap();
        db.insert(
            "BOOK",
            vec![
                Value::from(1),
                Value::from("The Dispossessed"),
                Value::from(1),
            ],
        )
        .unwrap();
        db.insert(
            "BOOK",
            vec![Value::from(2), Value::from("Earthsea"), Value::from(1)],
        )
        .unwrap();
        let g = SchemaGraph::from_foreign_keys(db.schema().clone(), 0.9, 0.8, 0.9).unwrap();
        (db, g)
    }

    fn precis_for(db: &Database, g: &SchemaGraph) -> (ResultSchema, PrecisDatabase) {
        let author = db.schema().relation_id("AUTHOR").unwrap();
        let schema = generate_result_schema(g, &[author], &DegreeConstraint::MinWeight(0.5));
        let seeds = HashMap::from([(author, vec![TupleId(0)])]);
        let precis = generate_result_database(
            db,
            g,
            &schema,
            &seeds,
            &CardinalityConstraint::Unbounded,
            RetrievalStrategy::NaiveQ,
            &DbGenOptions::default(),
        )
        .unwrap();
        (schema, precis)
    }

    #[test]
    fn designer_templates_render() {
        let (db, g) = setup();
        let author = db.schema().relation_id("AUTHOR").unwrap();
        let book = db.schema().relation_id("BOOK").unwrap();
        let mut vocab = Vocabulary::new();
        vocab.set_heading(author, 1);
        vocab.set_heading(book, 1);
        vocab
            .set_relation_clause(author, "@NAME writes books.")
            .unwrap();
        vocab
            .set_join_clause(author, book, "Works: @TITLE[*].")
            .unwrap();
        let (schema, precis) = precis_for(&db, &g);
        let t = Translator::new(&db, &g, &vocab);
        let text = t.narrate(&schema, &precis, author, TupleId(0)).unwrap();
        assert_eq!(
            text,
            "Le Guin writes books. Works: The Dispossessed, Earthsea."
        );
    }

    #[test]
    fn generic_fallback_narrates_without_any_vocabulary() {
        let (db, g) = setup();
        let author = db.schema().relation_id("AUTHOR").unwrap();
        let vocab = Vocabulary::new();
        let (schema, precis) = precis_for(&db, &g);

        // Without fallback: silence.
        let silent = Translator::new(&db, &g, &vocab);
        assert_eq!(
            silent
                .narrate(&schema, &precis, author, TupleId(0))
                .unwrap(),
            ""
        );

        // With fallback: mechanical but complete clauses.
        let t = Translator::new(&db, &g, &vocab).with_generic_fallback();
        let text = t.narrate(&schema, &precis, author, TupleId(0)).unwrap();
        assert!(text.contains("AUTHOR:"), "{text}");
        assert!(text.contains("name = Le Guin"), "{text}");
        assert!(text.contains("Related BOOK:"), "{text}");
        assert!(text.contains("The Dispossessed"), "{text}");
    }

    #[test]
    fn translate_walks_every_surviving_occurrence() {
        let (db, g) = setup();
        let vocab = Vocabulary::new();
        let engine = PrecisEngine::new(db, g).unwrap();
        let answer = engine
            .answer(
                &PrecisQuery::parse("guin"),
                &precis_core::AnswerSpec::new(
                    DegreeConstraint::MinWeight(0.5),
                    CardinalityConstraint::Unbounded,
                ),
            )
            .unwrap();
        let t = Translator::new(engine.database(), engine.graph(), &vocab).with_generic_fallback();
        let narratives = t.translate(&answer).unwrap();
        assert_eq!(narratives.len(), 1);
        assert_eq!(narratives[0].relation, "AUTHOR");
        assert_eq!(narratives[0].token, "guin");
        // Ranked translation returns the same set.
        let ranked = t.translate_ranked(&answer).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].text, narratives[0].text);
    }

    #[test]
    fn empty_result_database_yields_no_narratives() {
        let (db, g) = setup();
        let vocab = Vocabulary::new();
        let engine = PrecisEngine::new(db, g).unwrap();
        let answer = engine
            .answer(
                &PrecisQuery::parse("zzznothing"),
                &precis_core::AnswerSpec::new(
                    DegreeConstraint::MinWeight(0.5),
                    CardinalityConstraint::Unbounded,
                ),
            )
            .unwrap();
        assert_eq!(answer.precis.database.total_tuples(), 0);
        assert_eq!(answer.unmatched_tokens(), vec!["zzznothing"]);
        let t = Translator::new(engine.database(), engine.graph(), &vocab).with_generic_fallback();
        assert!(t.translate(&answer).unwrap().is_empty());
        assert!(t.translate_ranked(&answer).unwrap().is_empty());
    }

    #[test]
    fn missing_vocabulary_entries_silence_only_their_own_clauses() {
        let (db, g) = setup();
        let author = db.schema().relation_id("AUTHOR").unwrap();
        let book = db.schema().relation_id("BOOK").unwrap();
        let (schema, precis) = precis_for(&db, &g);

        // Relation clause present, join clause missing: the books go
        // unmentioned, but the author clause still renders.
        let mut partial = Vocabulary::new();
        partial.set_heading(author, 1);
        partial
            .set_relation_clause(author, "@NAME writes books.")
            .unwrap();
        let t = Translator::new(&db, &g, &partial);
        let text = t.narrate(&schema, &precis, author, TupleId(0)).unwrap();
        assert_eq!(text, "Le Guin writes books.");

        // Join clause present, relation clause missing: the narrative opens
        // directly with the join sentence.
        let mut joins_only = Vocabulary::new();
        joins_only.set_heading(author, 1);
        joins_only.set_heading(book, 1);
        joins_only
            .set_join_clause(author, book, "Works: @TITLE[*].")
            .unwrap();
        let t = Translator::new(&db, &g, &joins_only);
        let text = t.narrate(&schema, &precis, author, TupleId(0)).unwrap();
        assert_eq!(text, "Works: The Dispossessed, Earthsea.");
    }

    #[test]
    fn template_referencing_attribute_absent_from_result_errors_cleanly() {
        let (db, g) = setup();
        let author = db.schema().relation_id("AUTHOR").unwrap();
        // Degree 0.95 drops every 0.8-weight attribute projection, so the
        // result carries AUTHOR without its `name` attribute...
        let schema = generate_result_schema(&g, &[author], &DegreeConstraint::MinWeight(0.95));
        let seeds = HashMap::from([(author, vec![TupleId(0)])]);
        let precis = generate_result_database(
            &db,
            &g,
            &schema,
            &seeds,
            &CardinalityConstraint::Unbounded,
            RetrievalStrategy::NaiveQ,
            &DbGenOptions::default(),
        )
        .unwrap();
        assert!(!precis.visible.get(&author).is_some_and(|v| v.contains(&1)));

        // ...and a designer template that verbalizes @NAME anyway must fail
        // with the template error naming the variable, not panic or render
        // a hole.
        let mut vocab = Vocabulary::new();
        vocab
            .set_relation_clause(author, "@NAME writes books.")
            .unwrap();
        let err = Translator::new(&db, &g, &vocab)
            .narrate(&schema, &precis, author, TupleId(0))
            .unwrap_err();
        assert_eq!(err, crate::NlgError::UnknownVariable("NAME".to_owned()));
    }
}
