//! # precis-cli
//!
//! Session logic behind the `precis` binary: command parsing and execution
//! over a [`PrecisEngine`]. Kept as a library so the whole REPL surface is
//! unit-testable without a terminal.

use precis_core::{
    explain, AnswerSpec, CardinalityConstraint, CostModel, DegreeConstraint, PrecisAnswer,
    PrecisEngine, PrecisQuery, RetrievalStrategy,
};
use precis_datagen::{
    movies_graph, movies_vocabulary, woody_allen_instance, MoviesConfig, MoviesGenerator,
};
use precis_graph::{SchemaGraph, WeightProfile};
use precis_nlg::{Translator, Vocabulary};
use precis_obs::{Phase, QueryProfile};
use precis_storage::io::{dump_to_string, load_from_file};
use precis_storage::{Database, Value};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// CLI help text (also shown by `help`).
pub const HELP: &str = "\
precis — interactive précis query explorer

  precis --demo                  the paper's Woody Allen movies database
  precis --synthetic <movies>    seeded synthetic movies database
  precis --load <file>           a database saved with `save`
  precis ... --exec 'cmd; cmd'   run commands non-interactively
  precis ... serve [--addr A] [--workers N] [--queue N] [--deadline-ms MS]
                   [--data-dir DIR] [--checkpoint-every N]
                   [--trace-slow-ms MS] [--no-telemetry]
                                 run the HTTP query service over the chosen
                                 database (POST /shutdown stops it; honored
                                 from loopback peers only — note the API has
                                 no auth, so think before binding --addr to
                                 a non-loopback address). With --data-dir,
                                 POST /mutate writes are WAL-durable: the
                                 dir holds snapshot.precisdb + wal.log, and
                                 a restart recovers every acknowledged
                                 mutation (existing state beats the source).
                                 Telemetry is always on by default: every
                                 request gets a trace id and the tail sampler
                                 retains interesting traces at
                                 /v1/debug/traces; --trace-slow-ms overrides
                                 both classes' slow thresholds (0 retains
                                 everything), --no-telemetry disables it all
  precis testkit [--seed N] [--cases N] [--profile quick|soak]
                 [--repro-out FILE]
                                 run the differential oracle + fault-injection
                                 harness; exits non-zero on any mismatch and
                                 writes a shrunk JSON reproduction to FILE

commands:
  query <tokens>                 answer a précis query (quotes group phrases)
  explain [--profile] [--trace-out FILE] <tokens>
                                 answer a query and show per-phase timings and
                                 per-relation traversal counts; --profile adds
                                 the cost model's predicted-vs-measured columns
                                 (calibrated on first use); --trace-out writes
                                 Chrome trace_event JSON for chrome://tracing
  set degree minweight <w> | top <r> | maxlen <l>
  set cardinality perrel <n> | total <n> | unbounded
  set strategy naive | roundrobin | topweight
  weight <REL.attr|FROM->TO> <w> override one edge weight for this session
  weights reset                  drop all session weight overrides
  schema                         show the database schema
  settings                       show the current constraints and strategy
  save <file>                    save the last answer's database as text
  help                           this text
  quit                           leave";

/// Where the session's database comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// The paper's hand-crafted Woody Allen instance + Figure 1 graph +
    /// narrative vocabulary.
    Demo,
    /// Seeded synthetic movies database of the given size.
    Synthetic { movies: usize },
    /// A text dump produced by `save` (graph derived from foreign keys).
    File(String),
}

/// The result of executing one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    Output(String),
    Error(String),
    Quit,
}

/// One interactive session: an engine plus mutable query settings.
pub struct Session {
    engine: PrecisEngine,
    vocabulary: Option<Vocabulary>,
    degree: DegreeConstraint,
    cardinality: CardinalityConstraint,
    strategy: RetrievalStrategy,
    overrides: Vec<(String, f64)>,
    base_graph: SchemaGraph,
    last_answer: Option<PrecisAnswer>,
    source_label: String,
}

/// Materialize a [`Source`]: the database, its schema graph, the designer
/// vocabulary when one exists, and a human-readable label. Shared by the
/// interactive session and the `serve` subcommand.
pub fn open_source(
    source: Source,
) -> Result<(Database, SchemaGraph, Option<Vocabulary>, String), String> {
    match source {
        Source::Demo => {
            let db = woody_allen_instance();
            let vocab = movies_vocabulary(db.schema());
            Ok((
                db,
                movies_graph(),
                Some(vocab),
                "demo movies database".into(),
            ))
        }
        Source::Synthetic { movies } => {
            let db = MoviesGenerator::new(MoviesConfig {
                movies,
                directors: (movies / 8).max(1),
                actors: (movies / 2).max(1),
                theatres: (movies / 50).max(1),
                plays: movies * 2,
                ..MoviesConfig::default()
            })
            .generate();
            let vocab = movies_vocabulary(db.schema());
            Ok((
                db,
                movies_graph(),
                Some(vocab),
                format!("synthetic movies database ({movies} movies)"),
            ))
        }
        Source::File(path) => {
            let db = load_from_file(&path).map_err(|e| e.to_string())?;
            let graph = SchemaGraph::from_foreign_keys(db.schema().clone(), 0.9, 0.8, 0.9)
                .map_err(|e| e.to_string())?;
            Ok((db, graph, None, format!("database loaded from {path}")))
        }
    }
}

/// Calibrate the paper's cost-model micro-costs (`IndexTime`, `TupleTime`)
/// against a live database: the first indexed attribute with data behind it
/// is probed with real stored values. Returns `None` when the database has
/// no indexed, populated attribute to measure against.
pub fn calibrate_cost_model(db: &Database) -> Option<CostModel> {
    for (rel, schema) in db.schema().relations() {
        if db.len(rel) == 0 {
            continue;
        }
        for attr in 0..schema.arity() {
            if !db.has_index(rel, attr) {
                continue;
            }
            let samples: Vec<Value> = db
                .table(rel)
                .iter()
                .take(32)
                .map(|(_, t)| t.values()[attr].clone())
                .collect();
            if let Some(model) = CostModel::calibrate(db, rel, attr, &samples, 8) {
                return Some(model);
            }
        }
    }
    None
}

/// Tuning for the `serve` subcommand.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address. The API is unauthenticated: binding a non-loopback
    /// address exposes `/query` and `/metrics` to every peer that can reach
    /// the port (`POST /shutdown` and `POST /mutate` stay loopback-only
    /// regardless).
    pub addr: String,
    pub workers: usize,
    pub queue: usize,
    /// Default per-query deadline, milliseconds; 0 disables deadlines.
    pub deadline_ms: u64,
    /// Durable serving: the directory holding `snapshot.precisdb` and
    /// `wal.log`. When it already holds state, recovery wins over the
    /// `Source` (the source still provides the schema graph and
    /// vocabulary); when empty, the source bootstraps it. `None` serves
    /// purely in memory.
    pub data_dir: Option<String>,
    /// Snapshot + rotate the WAL after this many records (0 = never).
    pub checkpoint_every: u64,
    /// Tail-sampler slow threshold override, milliseconds, applied to both
    /// priority classes. `None` keeps the per-class defaults (25ms
    /// interactive / 250ms batch); 0 retains every completed request.
    pub trace_slow_ms: Option<u64>,
    /// Disable always-on telemetry entirely (no trace ids, no tail sampler,
    /// no SLO engine).
    pub no_telemetry: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8617".to_owned(),
            workers: 4,
            queue: 64,
            deadline_ms: 10_000,
            data_dir: None,
            checkpoint_every: 10_000,
            trace_slow_ms: None,
            no_telemetry: false,
        }
    }
}

/// Tuning for the `testkit` subcommand.
#[derive(Debug, Clone)]
pub struct TestkitOptions {
    pub seed: u64,
    /// Overrides the profile's default case count when set.
    pub cases: Option<usize>,
    pub profile: precis_testkit::Profile,
    /// Where to write the JSON reproduction artifact when the run fails.
    pub repro_out: Option<String>,
}

impl Default for TestkitOptions {
    fn default() -> Self {
        TestkitOptions {
            seed: 42,
            cases: None,
            profile: precis_testkit::Profile::Quick,
            repro_out: None,
        }
    }
}

/// Run the differential oracle + fault-injection harness, print the report,
/// and write the repro artifact on failure. Returns whether the run passed.
pub fn run_testkit(options: &TestkitOptions) -> bool {
    let mut config = precis_testkit::TestkitConfig::new(options.profile);
    config.seed = options.seed;
    if let Some(cases) = options.cases {
        config.cases = cases;
    }
    let report = precis_testkit::run(&config);
    print!("{}", report.render_text());
    if !report.ok() {
        if let Some(path) = &options.repro_out {
            match std::fs::write(path, report.to_json()) {
                Ok(()) => eprintln!("reproduction artifact written to {path}"),
                Err(e) => eprintln!("cannot write reproduction artifact {path}: {e}"),
            }
        }
    }
    report.ok()
}

/// Build the engine for `source` and start the HTTP service. The returned
/// handle serves until `POST /shutdown` (or `trigger_shutdown`); call
/// `wait()` to block until then.
pub fn start_server(
    source: Source,
    options: &ServeOptions,
) -> Result<(precis_server::ServerHandle, String), String> {
    let (source_db, graph, vocabulary, mut label) = open_source(source)?;

    // Durable serving: recover the data dir (its state beats the source) or
    // bootstrap it from the source, and wire the WAL into the database so
    // every mutation streams into the log.
    let (db, durability) = match &options.data_dir {
        None => (source_db, None),
        Some(dir) => {
            use precis_durability::{DurableStore, FsyncPolicy, SharedWal};
            let store = DurableStore::open(dir).map_err(|e| e.to_string())?;
            let policy = FsyncPolicy::Batch(256);
            let (mut db, wal) = match store.recover().map_err(|e| e.to_string())? {
                Some(rec) => {
                    let wal = store
                        .open_wal(policy, rec.report.next_lsn)
                        .map_err(|e| e.to_string())?;
                    let _ = write!(
                        label,
                        " (recovered from {dir}: {} replayed, {} skipped{})",
                        rec.report.replayed,
                        rec.report.skipped,
                        match &rec.report.truncated {
                            Some(why) => format!(", tail truncated: {why}"),
                            None => String::new(),
                        }
                    );
                    (rec.db, wal)
                }
                None => {
                    // Fresh dir: the initial snapshot covers the source
                    // database; the WAL starts empty at LSN 0.
                    precis_durability::write_snapshot(&source_db, 0, store.snapshot_path())
                        .map_err(|e| e.to_string())?;
                    let wal = store.create_wal(policy, 0).map_err(|e| e.to_string())?;
                    let _ = write!(label, " (durable at {dir})");
                    (source_db, wal)
                }
            };
            let wal = SharedWal::new(wal);
            db.set_wal_sink(std::sync::Arc::new(wal.clone()));
            let durability = precis_server::Durability::new(store, wal, options.checkpoint_every);
            (db, Some(durability))
        }
    };

    let mut engine = PrecisEngine::new(db, graph).map_err(|e| match &options.data_dir {
        Some(dir) => format!("state in {dir} is incompatible with the chosen source: {e}"),
        None => e.to_string(),
    })?;
    // Calibrate micro-costs up front so served query profiles carry the
    // cost model's predicted times next to the measured wall times.
    if let Some(model) = calibrate_cost_model(engine.database()) {
        engine.set_cost_model(model);
    }
    let engine = std::sync::Arc::new(engine);
    let telemetry = (!options.no_telemetry).then(|| {
        let mut t = precis_obs::TelemetryConfig::default();
        if let Some(ms) = options.trace_slow_ms {
            let threshold = std::time::Duration::from_millis(ms);
            t.slow_interactive = threshold;
            t.slow_batch = threshold;
        }
        t
    });
    let config = precis_server::ServerConfig {
        addr: options.addr.clone(),
        workers: options.workers,
        queue_capacity: options.queue,
        default_deadline: (options.deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(options.deadline_ms)),
        telemetry,
        ..precis_server::ServerConfig::default()
    };
    let handle = precis_server::Server::start_durable(engine, vocabulary, config, durability)
        .map_err(|e| format!("cannot start server on {}: {e}", options.addr))?;
    Ok((handle, label))
}

impl Session {
    /// Open a session over the given source.
    pub fn open(source: Source) -> Result<Session, String> {
        let (db, graph, vocabulary, label) = open_source(source)?;
        let base_graph = graph.clone();
        let engine = PrecisEngine::new(db, graph).map_err(|e| e.to_string())?;
        Ok(Session {
            engine,
            vocabulary,
            degree: DegreeConstraint::MinWeight(0.9),
            cardinality: CardinalityConstraint::MaxTuplesPerRelation(10),
            strategy: RetrievalStrategy::RoundRobin,
            overrides: Vec::new(),
            base_graph,
            last_answer: None,
            source_label: label,
        })
    }

    /// The greeting printed when the session starts.
    pub fn banner(&self) -> String {
        format!(
            "précis explorer — {} ({} tuples, {} relations). Type `help` for commands.",
            self.source_label,
            self.engine.database().total_tuples(),
            self.engine.database().schema().relation_count()
        )
    }

    /// Parse and execute one command line.
    pub fn execute(&mut self, line: &str) -> SessionOutcome {
        let line = line.trim();
        if line.is_empty() {
            return SessionOutcome::Output(String::new());
        }
        let (verb, rest) = match line.find(char::is_whitespace) {
            Some(p) => (&line[..p], line[p..].trim()),
            None => (line, ""),
        };
        match verb {
            "help" => SessionOutcome::Output(HELP.to_owned()),
            "quit" | "exit" => SessionOutcome::Quit,
            "query" | "q" => self.run_query(rest),
            "explain" => self.run_explain(rest),
            "set" => self.run_set(rest),
            "weight" => self.run_weight(rest),
            "weights" if rest == "reset" => {
                self.overrides.clear();
                SessionOutcome::Output("weight overrides cleared".into())
            }
            "schema" => SessionOutcome::Output(self.render_schema()),
            "settings" => SessionOutcome::Output(self.render_settings()),
            "save" => self.run_save(rest),
            other => SessionOutcome::Error(format!("unknown command {other:?} (try `help`)")),
        }
    }

    fn current_graph(&self) -> Result<SchemaGraph, String> {
        if self.overrides.is_empty() {
            return Ok(self.base_graph.clone());
        }
        let mut profile = WeightProfile::new("session");
        for (edge, w) in &self.overrides {
            profile = profile.set(edge.clone(), *w);
        }
        self.base_graph
            .with_profile(&profile)
            .map_err(|e| e.to_string())
    }

    fn run_query(&mut self, tokens: &str) -> SessionOutcome {
        if tokens.is_empty() {
            return SessionOutcome::Error("query needs tokens".into());
        }
        let graph = match self.current_graph() {
            Ok(g) => g,
            Err(e) => return SessionOutcome::Error(e),
        };
        // Rebuild an engine view with the session graph (cheap: index and
        // database are shared by reference inside the engine, so we answer
        // through a temporary engine over the same data).
        let spec = AnswerSpec::new(self.degree.clone(), self.cardinality.clone())
            .with_strategy(self.strategy);
        let query = PrecisQuery::parse(tokens);
        let answer = {
            // The engine owns its graph; apply session overrides by
            // registering them as a one-off profile.
            let mut engine_spec = spec;
            if !self.overrides.is_empty() {
                let mut profile = WeightProfile::new("__session");
                for (edge, w) in &self.overrides {
                    profile = profile.set(edge.clone(), *w);
                }
                self.engine.register_profile(profile);
                engine_spec = engine_spec.with_profile("__session");
            }
            match self.engine.answer(&query, &engine_spec) {
                Ok(a) => a,
                Err(e) => return SessionOutcome::Error(e.to_string()),
            }
        };

        let mut out = String::new();
        let unmatched = answer.unmatched_tokens();
        if !unmatched.is_empty() {
            let _ = writeln!(out, "(no matches for: {})", unmatched.join(", "));
        }
        let _ = write!(out, "{}", explain::explain_schema(&graph, &answer.schema));
        let _ = write!(
            out,
            "{}",
            explain::explain_precis(self.engine.database(), &answer.precis)
        );
        let _ = write!(
            out,
            "{}",
            explain::explain_cache(&self.engine.cache_stats())
        );
        // Narrate with the designer vocabulary when we have one; otherwise
        // fall back to generic mechanical clauses so loaded databases still
        // read as text.
        let fallback_vocab = Vocabulary::new();
        let translator = match &self.vocabulary {
            Some(vocab) => Translator::new(self.engine.database(), self.engine.graph(), vocab),
            None => Translator::new(self.engine.database(), self.engine.graph(), &fallback_vocab)
                .with_generic_fallback(),
        };
        match translator.translate_ranked(&answer) {
            Ok(narratives) => {
                for n in narratives {
                    let _ = writeln!(out, "\n[{} — {}]\n{}", n.token, n.relation, n.text);
                }
            }
            Err(e) => {
                let _ = writeln!(out, "(narrative unavailable: {e})");
            }
        }
        self.last_answer = Some(answer);
        SessionOutcome::Output(out)
    }

    /// `explain [--profile] [--trace-out FILE] <tokens>`: answer a query
    /// with a [`QueryProfile`] attached and print the per-phase /
    /// per-relation table instead of the narrative.
    fn run_explain(&mut self, rest: &str) -> SessionOutcome {
        let mut want_predictions = false;
        let mut trace_out: Option<String> = None;
        let mut tokens = rest.trim();
        loop {
            if let Some(r) = tokens.strip_prefix("--profile") {
                if !r.is_empty() && !r.starts_with(char::is_whitespace) {
                    break;
                }
                want_predictions = true;
                tokens = r.trim_start();
            } else if let Some(r) = tokens.strip_prefix("--trace-out") {
                let r = r.trim_start();
                let (path, rem) = match r.find(char::is_whitespace) {
                    Some(p) => (&r[..p], r[p..].trim_start()),
                    None => (r, ""),
                };
                if path.is_empty() {
                    return SessionOutcome::Error("--trace-out needs a file path".into());
                }
                trace_out = Some(path.to_owned());
                tokens = rem;
            } else {
                break;
            }
        }
        if tokens.is_empty() {
            return SessionOutcome::Error(
                "usage: explain [--profile] [--trace-out FILE] <tokens>".into(),
            );
        }
        if want_predictions && self.engine.cost_model().is_none() {
            // Calibrate once per session; the model sticks to the engine.
            match calibrate_cost_model(self.engine.database()) {
                Some(model) => self.engine.set_cost_model(model),
                None => {
                    return SessionOutcome::Error(
                        "cannot calibrate the cost model: no indexed attribute with data".into(),
                    )
                }
            }
        }

        let profile = Arc::new(QueryProfile::new());
        let mut spec = AnswerSpec::new(self.degree.clone(), self.cardinality.clone())
            .with_strategy(self.strategy);
        spec.options.profile = Some(profile.clone());
        if !self.overrides.is_empty() {
            let mut weights = WeightProfile::new("__session");
            for (edge, w) in &self.overrides {
                weights = weights.set(edge.clone(), *w);
            }
            self.engine.register_profile(weights);
            spec = spec.with_profile("__session");
        }

        // Arm the span tracer only when a trace file was requested; the
        // drain below then sees exactly this query's spans.
        let arm = trace_out.as_ref().map(|_| {
            let gate = precis_obs::exclusive();
            let guard = precis_obs::arm();
            precis_obs::drain();
            (gate, guard)
        });
        let t0 = Instant::now();
        let query = PrecisQuery::parse(tokens);
        profile.add_phase(Phase::Parse, t0.elapsed());
        let answer = match self.engine.answer(&query, &spec) {
            Ok(a) => a,
            Err(e) => return SessionOutcome::Error(e.to_string()),
        };
        // Narrate under the same trace id so NLG spans join the query's
        // trace, and so the profile's nlg phase matches the served path.
        let narrated = precis_obs::with_trace(profile.trace(), || {
            let nlg_span = precis_obs::span("nlg.translate");
            let t1 = Instant::now();
            let fallback_vocab = Vocabulary::new();
            let translator = match &self.vocabulary {
                Some(vocab) => Translator::new(self.engine.database(), self.engine.graph(), vocab),
                None => {
                    Translator::new(self.engine.database(), self.engine.graph(), &fallback_vocab)
                        .with_generic_fallback()
                }
            };
            let narrated = translator
                .translate_ranked(&answer)
                .map(|n| n.len())
                .unwrap_or(0);
            drop(nlg_span);
            profile.add_phase(Phase::Nlg, t1.elapsed());
            narrated
        });
        profile.finish();
        let snap = profile.snapshot();

        let mut out = String::new();
        let unmatched = answer.unmatched_tokens();
        if !unmatched.is_empty() {
            let _ = writeln!(out, "(no matches for: {})", unmatched.join(", "));
        }
        let _ = writeln!(
            out,
            "answer: {} tuples across {} relations, {} narrative(s)",
            answer.precis.total_tuples(),
            answer.precis.database.schema().relation_count(),
            narrated
        );
        out.push_str(&precis_obs::render_profile_text(&snap));
        if let Some(path) = trace_out {
            let drained = precis_obs::drain();
            drop(arm);
            let json = precis_obs::chrome_trace(&drained.spans, drained.dropped);
            match std::fs::write(&path, &json) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "trace: {} spans ({} dropped) written to {path} — load in chrome://tracing",
                        drained.spans.len(),
                        drained.dropped
                    );
                }
                Err(e) => return SessionOutcome::Error(format!("cannot write {path}: {e}")),
            }
        }
        self.last_answer = Some(answer);
        SessionOutcome::Output(out)
    }

    fn run_set(&mut self, rest: &str) -> SessionOutcome {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            ["degree", "minweight", w] => match w.parse::<f64>() {
                Ok(w) if (0.0..=1.0).contains(&w) => {
                    self.degree = DegreeConstraint::MinWeight(w);
                    SessionOutcome::Output(format!("degree: projections with weight >= {w}"))
                }
                _ => SessionOutcome::Error("minweight needs a number in [0, 1]".into()),
            },
            ["degree", "top", r] => match r.parse::<usize>() {
                Ok(r) => {
                    self.degree = DegreeConstraint::TopProjections(r);
                    SessionOutcome::Output(format!("degree: top {r} projections"))
                }
                Err(_) => SessionOutcome::Error("top needs a count".into()),
            },
            ["degree", "maxlen", l] => match l.parse::<usize>() {
                Ok(l) => {
                    self.degree = DegreeConstraint::MaxPathLength(l);
                    SessionOutcome::Output(format!("degree: paths of at most {l} edges"))
                }
                Err(_) => SessionOutcome::Error("maxlen needs a count".into()),
            },
            ["cardinality", "perrel", n] => match n.parse::<usize>() {
                Ok(n) => {
                    self.cardinality = CardinalityConstraint::MaxTuplesPerRelation(n);
                    SessionOutcome::Output(format!("cardinality: at most {n} tuples per relation"))
                }
                Err(_) => SessionOutcome::Error("perrel needs a count".into()),
            },
            ["cardinality", "total", n] => match n.parse::<usize>() {
                Ok(n) => {
                    self.cardinality = CardinalityConstraint::MaxTotalTuples(n);
                    SessionOutcome::Output(format!("cardinality: at most {n} tuples in total"))
                }
                Err(_) => SessionOutcome::Error("total needs a count".into()),
            },
            ["cardinality", "unbounded"] => {
                self.cardinality = CardinalityConstraint::Unbounded;
                SessionOutcome::Output("cardinality: unbounded".into())
            }
            ["strategy", s] => match *s {
                "naive" => {
                    self.strategy = RetrievalStrategy::NaiveQ;
                    SessionOutcome::Output("strategy: NaiveQ".into())
                }
                "roundrobin" => {
                    self.strategy = RetrievalStrategy::RoundRobin;
                    SessionOutcome::Output("strategy: Round-Robin".into())
                }
                "topweight" => {
                    self.strategy = RetrievalStrategy::TopWeight;
                    SessionOutcome::Output("strategy: TopWeight".into())
                }
                other => SessionOutcome::Error(format!(
                    "unknown strategy {other:?} (naive | roundrobin | topweight)"
                )),
            },
            _ => SessionOutcome::Error(
                "usage: set degree|cardinality|strategy ... (see `help`)".into(),
            ),
        }
    }

    fn run_weight(&mut self, rest: &str) -> SessionOutcome {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [edge, w] = parts.as_slice() else {
            return SessionOutcome::Error("usage: weight <REL.attr|FROM->TO> <w>".into());
        };
        let Ok(w) = w.parse::<f64>() else {
            return SessionOutcome::Error("weight needs a number".into());
        };
        // Validate the override eagerly against the base graph.
        let trial = WeightProfile::new("trial").set(edge.to_string(), w);
        if let Err(e) = self.base_graph.with_profile(&trial) {
            return SessionOutcome::Error(e.to_string());
        }
        self.overrides.retain(|(e, _)| e != edge);
        self.overrides.push((edge.to_string(), w));
        SessionOutcome::Output(format!("weight override: {edge} = {w}"))
    }

    fn run_save(&mut self, path: &str) -> SessionOutcome {
        if path.is_empty() {
            return SessionOutcome::Error("save needs a path".into());
        }
        let Some(answer) = &self.last_answer else {
            return SessionOutcome::Error("nothing to save — run a query first".into());
        };
        let text = dump_to_string(&answer.precis.database);
        match std::fs::write(path, &text) {
            Ok(()) => SessionOutcome::Output(format!(
                "saved {} tuples ({} bytes) to {path}",
                answer.precis.total_tuples(),
                text.len()
            )),
            Err(e) => SessionOutcome::Error(format!("cannot write {path}: {e}")),
        }
    }

    fn render_schema(&self) -> String {
        let mut out = String::new();
        let schema = self.engine.database().schema();
        let _ = writeln!(out, "database {:?}", schema.name());
        for (rel, r) in schema.relations() {
            let attrs: Vec<String> = r
                .attributes()
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let pk = if r.primary_key() == Some(i) { "*" } else { "" };
                    format!("{pk}{}:{}", a.name, a.ty)
                })
                .collect();
            let _ = writeln!(
                out,
                "  {}({}) — {} tuples",
                r.name(),
                attrs.join(", "),
                self.engine.database().len(rel)
            );
        }
        for fk in schema.foreign_keys() {
            let _ = writeln!(
                out,
                "  fk {}.{} -> {}.{}",
                fk.relation, fk.attribute, fk.ref_relation, fk.ref_attribute
            );
        }
        out
    }

    fn render_settings(&self) -> String {
        let degree = match &self.degree {
            DegreeConstraint::MinWeight(w) => format!("projections with weight >= {w}"),
            DegreeConstraint::TopProjections(r) => format!("top {r} projections"),
            DegreeConstraint::MaxPathLength(l) => format!("paths of at most {l} edges"),
            DegreeConstraint::All(_) => "composite".to_owned(),
        };
        let cardinality = match &self.cardinality {
            CardinalityConstraint::MaxTuplesPerRelation(n) => {
                format!("at most {n} tuples per relation")
            }
            CardinalityConstraint::MaxTotalTuples(n) => format!("at most {n} tuples in total"),
            CardinalityConstraint::Unbounded => "unbounded".to_owned(),
            CardinalityConstraint::All(_) => "composite".to_owned(),
        };
        let strategy = match self.strategy {
            RetrievalStrategy::NaiveQ => "NaiveQ",
            RetrievalStrategy::RoundRobin => "Round-Robin",
            RetrievalStrategy::TopWeight => "TopWeight",
        };
        let mut out =
            format!("degree:      {degree}\ncardinality: {cardinality}\nstrategy:    {strategy}");
        if !self.overrides.is_empty() {
            out.push_str("\noverrides:");
            for (e, w) in &self.overrides {
                let _ = write!(out, " {e}={w}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Session {
        Session::open(Source::Demo).expect("demo opens")
    }

    fn output(s: SessionOutcome) -> String {
        match s {
            SessionOutcome::Output(t) => t,
            other => panic!("expected output, got {other:?}"),
        }
    }

    #[test]
    fn banner_and_schema() {
        let s = demo();
        assert!(s.banner().contains("demo movies database"));
        let schema = s.render_schema();
        assert!(schema.contains("MOVIE(*mid:INT"));
        assert!(schema.contains("fk MOVIE.did -> DIRECTOR.did"));
    }

    #[test]
    fn query_produces_schema_data_and_narrative() {
        let mut s = demo();
        let out = output(s.execute(r#"query "Woody Allen""#));
        assert!(out.contains("result schema"), "{out}");
        assert!(out.contains("précis database"));
        assert!(out.contains("As a director, Woody Allen's work includes"));
    }

    #[test]
    fn repeated_queries_report_cache_hits() {
        let mut s = demo();
        let first = output(s.execute(r#"query "Woody Allen""#));
        assert!(
            first.contains("cache: schema 0/1 hits (0.0%), tokens 0/1 hits (0.0%)"),
            "{first}"
        );
        let second = output(s.execute(r#"query "Woody Allen""#));
        assert!(
            second.contains("cache: schema 1/2 hits (50.0%), tokens 1/2 hits (50.0%)"),
            "{second}"
        );
    }

    #[test]
    fn settings_commands_change_behavior() {
        let mut s = demo();
        output(s.execute("set degree top 2"));
        output(s.execute("set cardinality total 4"));
        output(s.execute("set strategy naive"));
        let settings = output(s.execute("settings"));
        assert!(settings.contains("top 2 projections"));
        assert!(settings.contains("at most 4 tuples in total"));
        assert!(settings.contains("NaiveQ"));
        let out = output(s.execute("query woody"));
        assert!(out.contains("précis database"));
    }

    #[test]
    fn weight_overrides_change_the_answer() {
        let mut s = demo();
        let before = output(s.execute(r#"query "Woody Allen""#));
        assert!(before.contains("GENRE"));
        output(s.execute("weight MOVIE->GENRE 0.1"));
        let after = output(s.execute(r#"query "Woody Allen""#));
        assert!(!after.contains("GENRE (in-degree"), "{after}");
        output(s.execute("weights reset"));
        let restored = output(s.execute(r#"query "Woody Allen""#));
        assert!(restored.contains("GENRE"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = demo();
        assert!(matches!(s.execute("nonsense"), SessionOutcome::Error(_)));
        assert!(matches!(s.execute("query"), SessionOutcome::Error(_)));
        assert!(matches!(
            s.execute("set degree minweight 2.0"),
            SessionOutcome::Error(_)
        ));
        assert!(matches!(
            s.execute("weight NOPE->NADA 0.5"),
            SessionOutcome::Error(_)
        ));
        assert!(matches!(s.execute("save /tmp/x"), SessionOutcome::Error(_)));
        assert!(matches!(s.execute("quit"), SessionOutcome::Quit));
        // Blank lines are fine.
        assert_eq!(s.execute("   "), SessionOutcome::Output(String::new()));
    }

    #[test]
    fn save_and_reload_round_trip() {
        let mut s = demo();
        output(s.execute(r#"query "Woody Allen""#));
        let path = std::env::temp_dir().join("precis_cli_test.precisdb");
        let path_str = path.to_str().unwrap().to_owned();
        let out = output(s.execute(&format!("save {path_str}")));
        assert!(out.contains("saved"));
        let mut loaded = Session::open(Source::File(path_str)).unwrap();
        let schema = output(loaded.execute("schema"));
        assert!(schema.contains("MOVIE"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loaded_databases_narrate_with_generic_fallback() {
        let mut s = demo();
        output(s.execute(r#"query "Woody Allen""#));
        let path = std::env::temp_dir().join("precis_cli_fallback.precisdb");
        let path_str = path.to_str().unwrap().to_owned();
        output(s.execute(&format!("save {path_str}")));
        let mut loaded = Session::open(Source::File(path_str)).unwrap();
        output(loaded.execute("set degree minweight 0.5"));
        let out = output(loaded.execute("query woody"));
        // No designer vocabulary for loaded dumps, so generic clauses apply.
        assert!(out.contains("DIRECTOR:"), "{out}");
        assert!(out.contains("dname = Woody Allen"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn explain_shows_phase_and_relation_profile() {
        let mut s = demo();
        let out = output(s.execute(r#"explain "Woody Allen""#));
        assert!(out.contains("query profile for \"Woody Allen\""), "{out}");
        assert!(out.contains("token_lookup"), "{out}");
        assert!(out.contains("db_gen"), "{out}");
        assert!(out.contains("nlg"), "{out}");
        assert!(out.contains("measured (ms)"), "{out}");
        // No cost model without --profile: predicted column shows dashes.
        assert!(!out.contains("cost model: predicted"), "{out}");
    }

    #[test]
    fn explain_profile_calibrates_and_predicts() {
        let mut s = demo();
        let out = output(s.execute(r#"explain --profile "Woody Allen""#));
        assert!(out.contains("cost model: predicted"), "{out}");
        assert!(out.contains("IndexTime"), "{out}");
        // The calibrated model sticks to the session engine.
        let again = output(s.execute(r#"explain woody"#));
        assert!(again.contains("cost model: predicted"), "{again}");
    }

    #[test]
    fn explain_trace_out_writes_chrome_trace_json() {
        let path = std::env::temp_dir().join("precis_cli_trace.json");
        let path_str = path.to_str().unwrap().to_owned();
        let mut s = demo();
        let out = output(s.execute(&format!("explain --trace-out {path_str} woody")));
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("chrome://tracing"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("engine.answer"), "{json}");
        assert!(json.contains("db_gen.generate"), "{json}");
        assert!(json.contains("nlg.translate"), "{json}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn explain_rejects_bad_usage() {
        let mut s = demo();
        assert!(matches!(s.execute("explain"), SessionOutcome::Error(_)));
        assert!(matches!(
            s.execute("explain --profile"),
            SessionOutcome::Error(_)
        ));
        assert!(matches!(
            s.execute("explain --trace-out"),
            SessionOutcome::Error(_)
        ));
    }

    #[test]
    fn serve_starts_answers_and_shuts_down() {
        let options = ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 2,
            deadline_ms: 2_000,
            ..ServeOptions::default()
        };
        let (handle, label) = start_server(Source::Demo, &options).unwrap();
        assert!(label.contains("demo movies database"));
        use std::io::{Read as _, Write as _};
        let mut conn = std::net::TcpStream::connect(handle.local_addr()).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        handle.trigger_shutdown();
        handle.wait();
    }

    /// The full operator story: serve with `--data-dir`, mutate, stop without
    /// any orderly close of the durability state, then restart on the same
    /// directory and watch the mutation come back.
    #[test]
    fn serve_with_data_dir_recovers_mutations_across_restarts() {
        use std::io::{Read as _, Write as _};

        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "precis-cli-durable-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let options = ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 4,
            deadline_ms: 2_000,
            data_dir: Some(dir.to_str().unwrap().to_owned()),
            checkpoint_every: 0,
            ..ServeOptions::default()
        };

        let post = |addr: std::net::SocketAddr, path: &str, body: &str| -> String {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            conn.write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        };

        // First life: fresh dir bootstraps from the demo source.
        let (handle, label) = start_server(Source::Demo, &options).unwrap();
        assert!(label.contains("durable at"), "{label}");
        let addr = handle.local_addr();
        let mutate = r#"{"ops":[{"op":"insert","relation":"DIRECTOR",
            "values":[777001,"Zzyxgnarp Qblitherton","Testville","1970-01-01"]}]}"#;
        let reply = post(addr, "/mutate", mutate);
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"applied\": 1"), "{reply}");
        let reply = post(addr, "/query", r#"{"tokens": "zzyxgnarp"}"#);
        assert!(reply.contains("Zzyxgnarp Qblitherton"), "{reply}");
        handle.trigger_shutdown();
        handle.wait();

        // Second life: recovery wins over the source; the mutation survives.
        let (handle, label) = start_server(Source::Demo, &options).unwrap();
        assert!(label.contains("recovered from"), "{label}");
        let reply = post(handle.local_addr(), "/query", r#"{"tokens": "zzyxgnarp"}"#);
        assert!(reply.contains("Zzyxgnarp Qblitherton"), "{reply}");
        handle.trigger_shutdown();
        handle.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synthetic_source_opens_and_answers() {
        let mut s = Session::open(Source::Synthetic { movies: 100 }).unwrap();
        let out = output(s.execute("query comedy"));
        assert!(out.contains("précis database"));
    }
}
