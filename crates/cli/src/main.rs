//! The `precis` binary: an interactive explorer for précis queries — the
//! "appropriate user interface" the paper imagines for setting weights at
//! query time and exploring a database interactively (§3.1).
//!
//! ```text
//! precis --demo                       # the paper's Woody Allen database
//! precis --synthetic 2000            # seeded synthetic movies database
//! precis --load dump.precisdb        # a database saved with `save`
//! precis --demo --exec 'query "Woody Allen"; quit'   # scripted
//! ```

use precis_cli::{Session, SessionOutcome};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source = None;
    let mut exec: Option<String> = None;
    let mut serve: Option<precis_cli::ServeOptions> = None;
    let mut testkit: Option<precis_cli::TestkitOptions> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "serve" => serve = Some(precis_cli::ServeOptions::default()),
            "testkit" => testkit = Some(precis_cli::TestkitOptions::default()),
            "--seed" => {
                i += 1;
                let opts = testkit
                    .as_mut()
                    .unwrap_or_else(|| usage("--seed needs `testkit`"));
                opts.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--cases" => {
                i += 1;
                let opts = testkit
                    .as_mut()
                    .unwrap_or_else(|| usage("--cases needs `testkit`"));
                opts.cases = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--cases needs a count")),
                );
            }
            "--profile" => {
                i += 1;
                let opts = testkit
                    .as_mut()
                    .unwrap_or_else(|| usage("--profile needs `testkit`"));
                opts.profile = args
                    .get(i)
                    .and_then(|s| precis_testkit::Profile::parse(s))
                    .unwrap_or_else(|| usage("--profile needs `quick` or `soak`"));
            }
            "--repro-out" => {
                i += 1;
                let opts = testkit
                    .as_mut()
                    .unwrap_or_else(|| usage("--repro-out needs `testkit`"));
                opts.repro_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--repro-out needs a path")),
                );
            }
            "--addr" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--addr needs `serve`"));
                opts.addr = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--addr needs an address"));
            }
            "--workers" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--workers needs `serve`"));
                opts.workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a thread count"));
            }
            "--queue" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--queue needs `serve`"));
                opts.queue = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--queue needs a capacity"));
            }
            "--deadline-ms" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--deadline-ms needs `serve`"));
                opts.deadline_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--deadline-ms needs milliseconds (0 = none)"));
            }
            "--data-dir" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--data-dir needs `serve`"));
                opts.data_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--data-dir needs a directory")),
                );
            }
            "--checkpoint-every" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--checkpoint-every needs `serve`"));
                opts.checkpoint_every = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--checkpoint-every needs a count (0 = never)"));
            }
            "--trace-slow-ms" => {
                i += 1;
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--trace-slow-ms needs `serve`"));
                opts.trace_slow_ms = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--trace-slow-ms needs milliseconds (0 = all)")),
                );
            }
            "--no-telemetry" => {
                let opts = serve
                    .as_mut()
                    .unwrap_or_else(|| usage("--no-telemetry needs `serve`"));
                opts.no_telemetry = true;
            }
            "--demo" => source = Some(precis_cli::Source::Demo),
            "--synthetic" => {
                i += 1;
                let movies = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--synthetic needs a movie count"));
                source = Some(precis_cli::Source::Synthetic { movies });
            }
            "--load" => {
                i += 1;
                let path = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--load needs a path"));
                source = Some(precis_cli::Source::File(path));
            }
            "--exec" => {
                i += 1;
                exec = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--exec needs commands")),
                );
            }
            "--help" | "-h" => {
                println!("{}", precis_cli::HELP);
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    let source = source.unwrap_or(precis_cli::Source::Demo);

    if let Some(options) = testkit {
        let ok = precis_cli::run_testkit(&options);
        std::process::exit(if ok { 0 } else { 1 });
    }

    if let Some(options) = serve {
        match precis_cli::start_server(source, &options) {
            Ok((handle, label)) => {
                println!(
                    "precis-server listening on http://{} — {label} \
                     ({} workers, queue {}, POST /shutdown to stop)",
                    handle.local_addr(),
                    options.workers,
                    options.queue
                );
                handle.wait();
                println!("precis-server stopped");
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut session = match Session::open(source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", session.banner());

    if let Some(script) = exec {
        for command in script.split(';') {
            if run_one(&mut session, command) {
                return;
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("precis> ");
        let _ = std::io::stdout().flush();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                if run_one(&mut session, &line) {
                    return;
                }
            }
            Err(e) => {
                eprintln!("input error: {e}");
                return;
            }
        }
    }
}

/// Returns true when the session should end.
fn run_one(session: &mut Session, command: &str) -> bool {
    match session.execute(command) {
        SessionOutcome::Output(text) => {
            if !text.is_empty() {
                println!("{text}");
            }
            false
        }
        SessionOutcome::Error(text) => {
            eprintln!("error: {text}");
            false
        }
        SessionOutcome::Quit => true,
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", precis_cli::HELP);
    std::process::exit(2)
}
