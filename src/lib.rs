//! # precis — umbrella crate
//!
//! Re-exports the whole Précis stack behind one dependency. See the README
//! for the architecture and [`precis_core::PrecisEngine`] for the main entry
//! point.
//!
//! The workspace reproduces *Précis: The Essence of a Query Answer*
//! (Koutrika, Simitsis, Ioannidis — ICDE 2006): free-form keyword queries
//! over a relational database answered with an entire sub-database (schema +
//! constraints + data) plus an optional natural-language narrative.

pub use precis_baseline as baseline;
pub use precis_core as core;
pub use precis_datagen as datagen;
pub use precis_graph as graph;
pub use precis_index as index;
pub use precis_nlg as nlg;
pub use precis_storage as storage;

/// Commonly used items, for `use precis::prelude::*`.
pub mod prelude {
    pub use precis_core::{
        CardinalityConstraint, DegreeConstraint, PrecisAnswer, PrecisEngine, PrecisQuery,
        RetrievalStrategy,
    };
    pub use precis_graph::{SchemaGraph, WeightProfile};
    pub use precis_index::InvertedIndex;
    pub use precis_nlg::{Translator, Vocabulary};
    pub use precis_storage::{DataType, Database, DatabaseSchema, RelationSchema, Value};
}
