//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so the workspace wires
//! `rayon = { path = "shims/rayon" }`. This shim provides real parallelism —
//! `std::thread::scope` fan-out, not a sequential fake — for the subset of
//! the rayon API the engine uses: `join`, `current_num_threads`, and
//! `slice.par_iter().map(f).collect()` (order-preserving). Unlike real rayon
//! there is no work-stealing pool; each `collect` spawns scoped OS threads,
//! one per chunk, capped at the hardware parallelism. That keeps semantics
//! identical (same inputs → same ordered outputs) while still overlapping
//! work on multi-core hosts.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    if let Some(n) = max_threads_override() {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn max_threads_override() -> Option<usize> {
    // Honors RAYON_NUM_THREADS like the real crate (0 / unset → default).
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

pub mod iter {
    use super::current_num_threads;

    /// Entry point mirroring `rayon::iter::IntoParallelRefIterator` for
    /// slices and `Vec`s.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Sync + 'a;
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// Entry point mirroring `rayon::iter::IntoParallelIterator` for owned
    /// `Vec`s — items are moved into the worker threads.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    /// Owning parallel iterator over a `Vec`.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParIter<T> {
        pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
        where
            F: Fn(T) -> R + Sync,
            R: Send,
        {
            IntoParMap {
                items: self.items,
                f,
            }
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// Mapped owning parallel iterator; terminal ops fan out over scoped
    /// threads, preserving input order.
    pub struct IntoParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> IntoParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Order-preserving parallel map-collect over owned items.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            self.run().into_iter().collect()
        }

        fn run(self) -> Vec<R> {
            let n = self.items.len();
            let workers = current_num_threads().min(n);
            if workers <= 1 {
                let f = self.f;
                return self.items.into_iter().map(f).collect();
            }
            let chunk = n.div_ceil(workers);
            let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
            let mut iter = self.items.into_iter();
            loop {
                let c: Vec<T> = iter.by_ref().take(chunk).collect();
                if c.is_empty() {
                    break;
                }
                chunks.push(c);
            }
            let f = &self.f;
            let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    out.push(h.join().expect("rayon shim: worker panicked"));
                }
            });
            out.into_iter().flatten().collect()
        }
    }

    /// Mapped parallel iterator; terminal ops fan out over scoped threads.
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T, R, F> ParMap<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        /// Order-preserving parallel map-collect.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            self.run().into_iter().collect()
        }

        fn run(self) -> Vec<R> {
            let n = self.items.len();
            let workers = current_num_threads().min(n);
            if workers <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let chunk = n.div_ceil(workers);
            let f = &self.f;
            let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for h in handles {
                    out.push(h.join().expect("rayon shim: worker panicked"));
                }
            });
            out.into_iter().flatten().collect()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParIter, IntoParMap, IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_on_empty_and_single() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = none.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn into_par_map_moves_items_and_preserves_order() {
        let xs: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let ys: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(
            ys,
            (0..100).map(|i| i.to_string().len()).collect::<Vec<_>>()
        );
        let none: Vec<String> = Vec::new();
        let out: Vec<usize> = none.into_par_iter().map(|s| s.len()).collect();
        assert!(out.is_empty());
    }
}
