//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so the workspace wires
//! `criterion = { path = "shims/criterion" }`. This is a small wall-clock
//! harness exposing the API shape the bench targets use — `criterion_group!`,
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_with_input, sample_size, finish}`,
//! `BenchmarkId::{new, from_parameter}`, `Bencher::iter`, and `black_box`.
//! It reports the median and minimum per-iteration time to stdout. It does
//! not do statistical outlier analysis or HTML reports; for trajectory
//! numbers the repo records `BENCH_PR1.json` via `precis-bench` instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    /// Number of timed samples (each sample is one batch of iterations).
    samples: usize,
    /// Target wall-clock spent measuring one benchmark.
    measurement_time: Duration,
    /// Target wall-clock spent warming up one benchmark.
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            samples: 20,
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &self.settings, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _parent: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.samples = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }
}

/// A named cluster of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.samples = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, &self.settings, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, &self.settings, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run in the current timed batch.
    iters: u64,
    /// Wall-clock of the most recent timed batch.
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`, keeping results alive via
    /// `black_box` so the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, settings: &Settings, f: &mut F) {
    // Warm-up: also estimates per-iteration cost to size timed batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += b.iters;
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    let per_sample_budget = settings.measurement_time.as_secs_f64() / settings.samples as f64;
    let iters_per_sample = ((per_sample_budget / per_iter.max(1e-9)) as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(settings.samples);
    for _ in 0..settings.samples {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "bench: {name:<48} median {:>12} min {:>12} ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(min),
        settings.samples,
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Defines a function that runs every listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(1u64 + 1)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut total = 0u64;
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| {
                    total += n;
                    black_box(n * 2)
                })
            });
        }
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
