//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace wires
//! `rand = { path = "shims/rand" }`. Only the API surface this repository
//! actually uses is provided: `Rng::{gen_range, gen_bool, gen}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, `thread_rng`, and
//! `prelude::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — the same construction the real `rand_xoshiro` uses — so
//! statistical tests (uniformity histograms, Zipf skew) behave like the real
//! crate, and streams are fully deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
///
/// Mirrors the split the real crate makes between `SampleRange` and
/// `SampleUniform`; collapsed here into one helper trait on the range type.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` without modulo bias (rejection sampling).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Zone is the largest multiple of span that fits in u64.
        let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    }
    // span > 2^64: draw 128 bits.
    let zone = u128::MAX - (u128::MAX % span + 1) % span;
    loop {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if v <= zone {
            return v % span;
        }
    }
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Minimal core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`Range` or `RangeInclusive`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (stands in for `Standard`-distribution
/// sampling in the real crate).
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-expanded seed).
    ///
    /// Not the same stream as the real `StdRng` (which is ChaCha12), but the
    /// workspace only relies on determinism-per-seed and statistical quality,
    /// both of which xoshiro256++ satisfies.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A process-global, non-cryptographic RNG seeded from the system clock and
/// a per-thread counter; stands in for `rand::thread_rng`.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    let tid = {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CTR: AtomicU64 = AtomicU64::new(0);
        CTR.fetch_add(1, Ordering::Relaxed)
    };
    SeedableRng::seed_from_u64(nanos ^ tid.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_from(rng);
                Some(&self[i])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut low = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let v = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                low += 1;
            }
        }
        assert!((4500..=5500).contains(&low), "low half: {low}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..=2800).contains(&hits), "hits: {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0)); // p=1.0 always fires
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }

    #[test]
    fn choose_picks_member() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
