//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace wires
//! `proptest = { path = "shims/proptest" }`. This shim keeps the parts the
//! repository's property tests rely on: the `proptest!` macro (with
//! `#![proptest_config(...)]`), `Strategy` values built from regex-subset
//! string literals, numeric ranges, `any::<T>()`, `Just`, tuples,
//! `collection::vec`, `option::of`, `prop_oneof!`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` result macros. Inputs are
//! generated from a deterministic per-test RNG, so failures reproduce across
//! runs. There is no shrinking: a failing case reports its case number, seed,
//! and assertion message instead of a minimized input.

// Let code inside this crate (including macro expansions in the test module
// below) refer to it by its public name, as downstream users do.
extern crate self as proptest;

use rand::prelude::*;

/// RNG handed to strategies. Deterministic per (test name, case index).
pub type TestRng = StdRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — not counted as a failure.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner settings, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of one type. The shim's analogue of
/// `proptest::strategy::Strategy` — `generate` plays the role of
/// `new_tree` + `current`, with no shrinking machinery.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe carrier so heterogeneous strategies unify in `prop_oneof!`.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across a wide magnitude span; no NaN/inf, matching
        // how the tests use any::<f64>-like inputs.
        let mag = rng.gen_range(-300i32..300) as f64;
        let mantissa = rng.gen_range(-1.0f64..1.0);
        mantissa * 10f64.powi(mag as i32 / 10)
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals are regex-subset strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        strings::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `proptest::collection::vec`: a vector with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `proptest::option::of`: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

mod strings {
    //! Generator for the regex subset the repository's patterns use:
    //! literals, `.`, escapes, character classes with ranges, groups with
    //! alternation, and `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers.

    use super::TestRng;
    use rand::Rng;

    #[derive(Debug)]
    enum Node {
        Lit(char),
        Dot,
        Class(Vec<(char, char)>),
        Group(Vec<Vec<(Node, Rep)>>),
    }

    #[derive(Debug, Clone, Copy)]
    struct Rep {
        min: usize,
        max: usize, // inclusive
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn expect(&mut self, want: char, pattern: &str) {
            match self.bump() {
                Some(c) if c == want => {}
                other => panic!(
                    "proptest shim: expected {want:?}, found {other:?} in pattern {pattern:?}"
                ),
            }
        }

        fn parse_alternatives(&mut self, pattern: &str) -> Vec<Vec<(Node, Rep)>> {
            let mut alts = vec![self.parse_sequence(pattern)];
            while self.peek() == Some('|') {
                self.bump();
                alts.push(self.parse_sequence(pattern));
            }
            alts
        }

        fn parse_sequence(&mut self, pattern: &str) -> Vec<(Node, Rep)> {
            let mut seq = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let node = self.parse_atom(pattern);
                let rep = self.parse_quantifier(pattern);
                seq.push((node, rep));
            }
            seq
        }

        fn parse_atom(&mut self, pattern: &str) -> Node {
            match self.bump().expect("non-empty atom") {
                '.' => Node::Dot,
                '[' => self.parse_class(pattern),
                '(' => {
                    let alts = self.parse_alternatives(pattern);
                    self.expect(')', pattern);
                    Node::Group(alts)
                }
                '\\' => Node::Lit(unescape(
                    self.bump()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                )),
                c => Node::Lit(c),
            }
        }

        fn parse_class(&mut self, pattern: &str) -> Node {
            let mut ranges = Vec::new();
            loop {
                let c = match self.bump() {
                    Some(']') => break,
                    Some('\\') => unescape(
                        self.bump()
                            .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                    ),
                    Some(c) => c,
                    None => panic!("unterminated class in {pattern:?}"),
                };
                // `a-z` is a range unless `-` is the final member.
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump(); // '-'
                    let hi = match self.bump() {
                        Some('\\') => unescape(
                            self.bump()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                        ),
                        Some(hi) => hi,
                        None => panic!("unterminated range in {pattern:?}"),
                    };
                    assert!(c <= hi, "inverted range {c:?}-{hi:?} in {pattern:?}");
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            assert!(!ranges.is_empty(), "empty class in {pattern:?}");
            Node::Class(ranges)
        }

        fn parse_quantifier(&mut self, pattern: &str) -> Rep {
            match self.peek() {
                Some('{') => {
                    self.bump();
                    let min = self.parse_number(pattern);
                    let rep = match self.bump() {
                        Some('}') => Rep { min, max: min },
                        Some(',') => {
                            if self.peek() == Some('}') {
                                Rep { min, max: min + 8 }
                            } else {
                                let max = self.parse_number(pattern);
                                Rep { min, max }
                            }
                        }
                        other => panic!("bad quantifier {other:?} in {pattern:?}"),
                    };
                    if self.peek() == Some('}') {
                        self.bump();
                    }
                    assert!(rep.min <= rep.max, "inverted quantifier in {pattern:?}");
                    rep
                }
                Some('*') => {
                    self.bump();
                    Rep { min: 0, max: 8 }
                }
                Some('+') => {
                    self.bump();
                    Rep { min: 1, max: 8 }
                }
                Some('?') => {
                    self.bump();
                    Rep { min: 0, max: 1 }
                }
                _ => Rep { min: 1, max: 1 },
            }
        }

        fn parse_number(&mut self, pattern: &str) -> usize {
            let mut n = String::new();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                n.push(self.bump().unwrap());
            }
            n.parse()
                .unwrap_or_else(|_| panic!("bad number in quantifier of {pattern:?}"))
        }
    }

    fn unescape(c: char) -> char {
        match c {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            '0' => '\0',
            other => other, // \\ \. \- \[ \] \( \) \{ \} \| \' \" etc.
        }
    }

    fn gen_seq(seq: &[(Node, Rep)], rng: &mut TestRng, out: &mut String) {
        for (node, rep) in seq {
            let n = rng.gen_range(rep.min..=rep.max);
            for _ in 0..n {
                gen_node(node, rng, out);
            }
        }
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Dot => out.push(gen_dot(rng)),
            Node::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick).expect("valid scalar"));
                        return;
                    }
                    pick -= span;
                }
                unreachable!("weighted pick within total");
            }
            Node::Group(alts) => {
                let i = rng.gen_range(0..alts.len());
                gen_seq(&alts[i], rng, out);
            }
        }
    }

    /// `.` matches anything but `\n`: mostly printable ASCII, with a dash of
    /// tabs and non-ASCII scalars to keep parsers honest about Unicode.
    fn gen_dot(rng: &mut TestRng) -> char {
        const EXOTIC: [char; 8] = ['\t', 'é', 'ß', 'α', '世', '🦀', '\u{fffd}', '\u{200b}'];
        if rng.gen_bool(0.9) {
            char::from_u32(rng.gen_range(0x20u32..0x7f)).expect("printable ascii")
        } else {
            EXOTIC[rng.gen_range(0..EXOTIC.len())]
        }
    }

    /// Generate a string matching `pattern` (the supported regex subset).
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut p = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let alts = p.parse_alternatives(pattern);
        assert!(
            p.pos == p.chars.len(),
            "trailing junk at {} in pattern {pattern:?}",
            p.pos
        );
        let mut out = String::new();
        let i = rng.gen_range(0..alts.len());
        gen_seq(&alts[i], rng, &mut out);
        out
    }
}

/// Drives one property: generates inputs, runs the body, panics on failure.
/// Called by the expansion of [`proptest!`]; not part of the public proptest
/// API surface.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut accepted: u32 = 0;
    let mut attempts: u64 = 0;
    let max_attempts = config.cases as u64 * 20 + 100;
    while accepted < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest {name}: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted) — prop_assume! rejects too much",
                config.cases
            );
        }
        let seed = base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        attempts += 1;
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject)) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest {name}: case {accepted} failed (seed {seed:#x}): {msg}");
            }
            Err(payload) => {
                eprintln!("proptest {name}: case {accepted} panicked (seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&config, stringify!($name), |proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), proptest_rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!`: fail the current case without panicking the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!`: equality assertion reported through the runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `prop_assume!`: discard the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::strings::generate_matching;
    use super::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn class_patterns_stay_in_alphabet() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn class_with_literals_and_trailing_dash() {
        let mut rng = rng();
        let allowed: Vec<char> =
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:!?'-"
                .chars()
                .collect();
        for _ in 0..300 {
            let s = generate_matching("[a-zA-Z0-9 .,;:!?'-]{0,80}", &mut rng);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_range_class() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[ -~\\t\\n]{0,24}", &mut rng);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) || c == '\t' || c == '\n'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn groups_repeat_and_alternate() {
        let mut rng = rng();
        let mut saw_multiword = false;
        for _ in 0..300 {
            let s = generate_matching("[a-zA-Z]{1,12}( [a-zA-Z]{1,12}){0,2}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{s:?}");
            for w in &words {
                assert!(
                    !w.is_empty() && w.chars().all(|c| c.is_ascii_alphabetic()),
                    "{s:?}"
                );
            }
            saw_multiword |= words.len() > 1;
        }
        assert!(saw_multiword);
        let mut saw = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = generate_matching("(query|set|weight|weights)", &mut rng);
            assert!(
                ["query", "set", "weight", "weights"].contains(&s.as_str()),
                "{s:?}"
            );
            saw.insert(s);
        }
        assert_eq!(saw.len(), 4, "all alternatives reachable");
    }

    #[test]
    fn dot_never_generates_newline() {
        let mut rng = rng();
        for _ in 0..300 {
            let s = generate_matching(".{0,120}", &mut rng);
            assert!(s.chars().count() <= 120);
            assert!(!s.contains('\n'), "{s:?}");
        }
    }

    #[test]
    fn runner_is_deterministic_and_counts_cases() {
        let mut seen_a = Vec::new();
        let cfg = ProptestConfig::with_cases(16);
        super::run_proptest(&cfg, "det", |rng| {
            seen_a.push((0u64..1000).generate(rng));
            Ok(())
        });
        let mut seen_b = Vec::new();
        super::run_proptest(&cfg, "det", |rng| {
            seen_b.push((0u64..1000).generate(rng));
            Ok(())
        });
        assert_eq!(seen_a, seen_b);
        assert_eq!(seen_a.len(), 16);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_reports_failures() {
        super::run_proptest(&ProptestConfig::with_cases(4), "fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "rejects too much")]
    fn runner_gives_up_on_heavy_rejection() {
        super::run_proptest(&ProptestConfig::with_cases(4), "rejects", |_rng| {
            Err(TestCaseError::Reject)
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, trailing comma, strategies of
        /// different kinds, and all three result macros.
        #[test]
        fn macro_smoke(
            n in 1usize..10,
            word in "[a-z]{1,4}",
            pair in (0u32..5, any::<bool>()),
            choice in prop_oneof![Just(1i32), Just(2i32), 10i32..20],
        ) {
            prop_assume!(n != 9);
            prop_assert!((1..10).contains(&n));
            prop_assert!(!word.is_empty() && word.len() <= 4);
            prop_assert_eq!(pair.0 as usize + n, n + pair.0 as usize);
            prop_assert!(choice == 1 || choice == 2 || (10..20).contains(&choice), "choice={}", choice);
        }

        #[test]
        fn collections_and_options(
            xs in proptest::collection::vec("[a-z]{0,3}", 0..6),
            maybe in proptest::option::of(-10i64..10),
        ) {
            prop_assert!(xs.len() < 6);
            if let Some(v) = maybe {
                prop_assert!((-10..10).contains(&v));
            }
        }
    }
}
