//! End-to-end reproduction of the paper's running example (§5): the query
//! Q = {"Woody Allen"} over the movies database of Figure 1, and the
//! narrative of §5.3.

use precis::core::{
    AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery,
    RetrievalStrategy,
};
use precis::datagen::{movies_graph, movies_vocabulary, woody_allen_instance};
use precis::nlg::Translator;

fn engine() -> PrecisEngine {
    PrecisEngine::new(woody_allen_instance(), movies_graph()).expect("engine builds")
}

fn spec() -> AnswerSpec {
    // Degree: projections with weight ≥ 0.9 (the paper's example). The
    // cardinality is relaxed to 10/relation so the full §5.3 narrative is
    // retrievable; the paper's literal ≤3/relation is tested separately.
    AnswerSpec::new(
        DegreeConstraint::MinWeight(0.9),
        CardinalityConstraint::MaxTuplesPerRelation(10),
    )
}

#[test]
fn inverted_index_finds_the_homonyms() {
    let engine = engine();
    let answer = engine
        .answer(&PrecisQuery::parse(r#""Woody Allen""#), &spec())
        .unwrap();
    assert_eq!(answer.matches.len(), 1);
    let occ = &answer.matches[0].occurrences;
    // Woody Allen is a director and also an actor (§5.1).
    let rels: Vec<&str> = occ
        .iter()
        .map(|o| engine.database().schema().relation(o.rel).name())
        .collect();
    assert!(rels.contains(&"DIRECTOR"));
    assert!(rels.contains(&"ACTOR"));
    assert!(answer.unmatched_tokens().is_empty());
}

#[test]
fn result_schema_matches_figure_4() {
    let engine = engine();
    let answer = engine
        .answer(&PrecisQuery::parse(r#""Woody Allen""#), &spec())
        .unwrap();
    let s = engine.database().schema();
    let rel = |n: &str| s.relation_id(n).unwrap();
    let rs = &answer.schema;

    for present in ["DIRECTOR", "ACTOR", "CAST", "MOVIE", "GENRE"] {
        assert!(rs.contains(rel(present)), "{present} should be in G'");
    }
    for absent in ["THEATRE", "PLAY"] {
        assert!(!rs.contains(rel(absent)), "{absent} should be excluded");
    }
    // "MOVIE has an in-degree equal to 2" (§5.1).
    assert_eq!(rs.in_degree(rel("MOVIE")), 2);

    let vis = |r: &str| -> Vec<String> {
        rs.visible_attrs(rel(r))
            .into_iter()
            .map(|a| s.relation(rel(r)).attr_name(a).to_owned())
            .collect()
    };
    assert_eq!(vis("DIRECTOR"), vec!["dname", "blocation", "bdate"]);
    assert_eq!(vis("MOVIE"), vec!["title", "year"]);
    assert_eq!(vis("GENRE"), vec!["genre"]);
    assert!(vis("CAST").is_empty(), "CAST is a pure bridge");
}

#[test]
fn narrative_reproduces_the_paper_output() {
    let engine = engine();
    let answer = engine
        .answer(&PrecisQuery::parse(r#""Woody Allen""#), &spec())
        .unwrap();
    let vocab = movies_vocabulary(engine.database().schema());
    let translator = Translator::new(engine.database(), engine.graph(), &vocab);
    let narratives = translator.translate(&answer).unwrap();

    // One narrative per homonym occurrence.
    assert_eq!(narratives.len(), 2, "{narratives:#?}");

    let director = narratives
        .iter()
        .find(|n| n.relation == "DIRECTOR")
        .expect("director narrative");
    assert_eq!(
        director.text,
        "Woody Allen was born on December 1, 1935 in Brooklyn, New York, USA. \
         As a director, Woody Allen's work includes Match Point (2005), \
         Melinda and Melinda (2004), Anything Else (2003). \
         Match Point is Drama, Thriller. \
         Melinda and Melinda is Comedy, Drama. \
         Anything Else is Comedy, Romance."
    );

    let actor = narratives
        .iter()
        .find(|n| n.relation == "ACTOR")
        .expect("actor narrative");
    assert_eq!(
        actor.text,
        "Woody Allen was born on December 1, 1935 in Brooklyn, New York, USA. \
         As an actor, Woody Allen's work includes Hollywood Ending (2002), \
         The Curse of the Jade Scorpion (2001)."
    );
}

#[test]
fn paper_literal_cardinality_three_per_relation() {
    let engine = engine();
    let spec = AnswerSpec::paper_example().with_options(precis::core::DbGenOptions {
        repair_foreign_keys: false,
        ..Default::default()
    });
    let answer = engine
        .answer(&PrecisQuery::parse(r#""Woody Allen""#), &spec)
        .unwrap();
    for (rel, tids) in &answer.precis.collected {
        assert!(
            tids.len() <= 3,
            "relation {} exceeded the constraint: {}",
            engine.database().schema().relation(*rel).name(),
            tids.len()
        );
    }
    // The three directed movies fit exactly (Figure 6).
    let movie = engine.database().schema().relation_id("MOVIE").unwrap();
    assert_eq!(answer.precis.collected[&movie].len(), 3);
}

#[test]
fn result_database_satisfies_its_constraints() {
    let engine = engine();
    let answer = engine
        .answer(&PrecisQuery::parse(r#""Woody Allen""#), &spec())
        .unwrap();
    let out = &answer.precis.database;
    assert!(out.validate_foreign_keys().is_empty());
    // Result relation names are a subset of the original's (§3.3 cond. 1).
    for (_, r) in out.schema().relations() {
        assert!(
            engine.database().schema().relation_id(r.name()).is_some(),
            "unexpected relation {}",
            r.name()
        );
    }
}

#[test]
fn round_robin_and_naive_agree_when_unconstrained() {
    let engine = engine();
    let base = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.9),
        CardinalityConstraint::Unbounded,
    );
    let a = engine
        .answer(
            &PrecisQuery::parse(r#""Woody Allen""#),
            &base.clone().with_strategy(RetrievalStrategy::NaiveQ),
        )
        .unwrap();
    let b = engine
        .answer(
            &PrecisQuery::parse(r#""Woody Allen""#),
            &base.with_strategy(RetrievalStrategy::RoundRobin),
        )
        .unwrap();
    assert_eq!(a.precis.total_tuples(), b.precis.total_tuples());
    for (rel, tids) in &a.precis.collected {
        let mut x = tids.clone();
        let mut y = b.precis.collected[rel].clone();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y, "strategies must agree without a budget");
    }
}
