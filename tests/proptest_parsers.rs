//! Property tests on the parsing/serialization surfaces: the template
//! language, the free-form query parser, the storage dump/load format, and
//! the inverted index's findability guarantee.

use precis::core::PrecisQuery;
use precis::index::{tokenize, InvertedIndex};
use precis::nlg::{Bindings, Template};
use precis::storage::io::{dump_to_string, load_from_string};
use precis::storage::{DataType, Database, DatabaseSchema, ForeignKey, RelationSchema, Value};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The template parser never panics; it either parses or reports a
    /// structured error.
    #[test]
    fn template_parser_total(src in ".{0,120}") {
        let _ = Template::parse(&src);
    }

    /// Whatever parses also renders (or fails with a structured error) for
    /// arbitrary bindings — no panics, no infinite loops.
    #[test]
    fn template_render_total(
        src in "[ -~]{0,80}",
        values in proptest::collection::vec("[a-z]{0,8}", 0..4),
    ) {
        if let Ok(t) = Template::parse(&src) {
            let mut b = Bindings::new();
            for name in t.variables() {
                b.set(name.to_owned(), values.clone());
            }
            let _ = t.render(&b, &HashMap::new());
        }
    }

    /// Literal-only templates round-trip their text exactly.
    #[test]
    fn literal_templates_echo(src in "[a-zA-Z0-9 .,;:!?'-]{0,80}") {
        let t = Template::parse(&src).expect("no meta characters");
        let out = t.render(&Bindings::new(), &HashMap::new()).unwrap();
        prop_assert_eq!(out, src);
    }

    /// The query parser never panics, drops no non-whitespace input outside
    /// quotes, and produces no empty tokens.
    #[test]
    fn query_parser_total(input in ".{0,100}") {
        let q = PrecisQuery::parse(&input);
        for t in q.tokens() {
            prop_assert!(!t.trim().is_empty());
        }
    }

    /// Unquoted words are preserved verbatim, in order.
    #[test]
    fn query_parser_words_roundtrip(words in proptest::collection::vec("[a-z]{1,10}", 0..8)) {
        let input = words.join(" ");
        let q = PrecisQuery::parse(&input);
        prop_assert_eq!(q.tokens(), words.as_slice());
    }

    /// dump → load → dump is a fixpoint for arbitrary text/int/float/bool
    /// content, including control characters in text.
    #[test]
    fn storage_io_roundtrip(
        rows in proptest::collection::vec(
            ("[ -~\t\n]{0,24}", any::<i64>(), any::<bool>(), proptest::option::of(-1e9f64..1e9)),
            0..24,
        ),
    ) {
        let mut schema = DatabaseSchema::new("prop");
        schema
            .add_relation(
                RelationSchema::builder("R")
                    .attr_not_null("id", DataType::Int)
                    .attr("t", DataType::Text)
                    .attr("n", DataType::Int)
                    .attr("b", DataType::Bool)
                    .attr("f", DataType::Float)
                    .primary_key("id")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for (i, (t, n, b, f)) in rows.iter().enumerate() {
            db.insert(
                "R",
                vec![
                    Value::from(i),
                    Value::from(t.as_str()),
                    Value::from(*n),
                    Value::from(*b),
                    f.map(Value::from).unwrap_or(Value::Null),
                ],
            )
            .unwrap();
        }
        let text = dump_to_string(&db);
        let loaded = load_from_string(&text).unwrap();
        prop_assert_eq!(loaded.total_tuples(), db.total_tuples());
        prop_assert_eq!(dump_to_string(&loaded), text);
        let r = loaded.schema().relation_id("R").unwrap();
        for (tid, tup) in db.table(r).iter() {
            prop_assert_eq!(loaded.table(r).get(tid).unwrap(), tup);
        }
    }

    /// Findability: every word of every inserted text value is found by the
    /// index, and every hit actually contains the word.
    #[test]
    fn index_findability(
        names in proptest::collection::vec("[a-zA-Z]{1,12}( [a-zA-Z]{1,12}){0,2}", 1..16),
    ) {
        let mut schema = DatabaseSchema::new("p");
        schema
            .add_relation(
                RelationSchema::builder("R")
                    .attr_not_null("id", DataType::Int)
                    .attr("name", DataType::Text)
                    .primary_key("id")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for (i, n) in names.iter().enumerate() {
            db.insert("R", vec![Value::from(i), Value::from(n.as_str())]).unwrap();
        }
        let idx = InvertedIndex::build(&db);
        let r = db.schema().relation_id("R").unwrap();
        for (tid, tup) in db.table(r).iter() {
            let text = tup.get(1).as_text().unwrap();
            for word in tokenize(text) {
                let occs = idx.lookup(&db, &word);
                let hit = occs.iter().any(|o| o.rel == r && o.tids.contains(&tid));
                prop_assert!(hit, "word {word:?} of tuple {tid:?} not found");
            }
            // The full value works as a phrase query too.
            let occs = idx.lookup(&db, text);
            prop_assert!(occs.iter().any(|o| o.tids.contains(&tid)));
        }
        // And every posting is truthful.
        for (i, n) in names.iter().enumerate() {
            for word in tokenize(n) {
                for occ in idx.lookup(&db, &word) {
                    for tid in occ.tids.iter() {
                        let t = db.table(occ.rel).get(*tid).unwrap();
                        let stored = t.get(occ.attr).as_text().unwrap();
                        prop_assert!(
                            tokenize(stored).contains(&word),
                            "posting for {word:?} points at {stored:?}"
                        );
                    }
                }
            }
            let _ = i;
        }
    }

    /// FK round trip: dumped foreign keys reload and validate.
    #[test]
    fn storage_io_fk_roundtrip(n in 1usize..12) {
        let mut schema = DatabaseSchema::new("fks");
        schema
            .add_relation(
                RelationSchema::builder("P")
                    .attr_not_null("id", DataType::Int)
                    .primary_key("id")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        schema
            .add_relation(
                RelationSchema::builder("C")
                    .attr_not_null("id", DataType::Int)
                    .attr("p", DataType::Int)
                    .primary_key("id")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        schema
            .add_foreign_key(ForeignKey::new("C", "p", "P", "id"))
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for i in 0..n {
            db.insert("P", vec![Value::from(i)]).unwrap();
            db.insert("C", vec![Value::from(i), Value::from(i)]).unwrap();
        }
        let loaded = load_from_string(&dump_to_string(&db)).unwrap();
        prop_assert!(loaded.validate_foreign_keys().is_empty());
        prop_assert_eq!(loaded.schema().foreign_keys().len(), 1);
    }
}
