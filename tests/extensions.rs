//! Extensions beyond the paper's core algorithms: data-value weights (§7
//! ongoing work), Formula-3 time-budgeted answering, synonym expansion
//! (§5.1), dump/load, and the explain renderers.

use precis::core::{
    explain, AnswerSpec, CardinalityConstraint, CostModel, DbGenOptions, DegreeConstraint,
    PrecisEngine, PrecisQuery, RetrievalStrategy, TupleWeights,
};
use precis::datagen::{movies_graph, woody_allen_instance};
use precis::index::{InvertedIndex, SynonymMap};
use precis::storage::io::{dump_to_string, load_from_string};
use std::sync::Arc;

fn engine() -> PrecisEngine {
    PrecisEngine::new(woody_allen_instance(), movies_graph()).unwrap()
}

#[test]
fn data_value_weights_bias_retrieval_toward_recent_movies() {
    let e = engine();
    let movie = e.database().schema().relation_id("MOVIE").unwrap();
    let year = e
        .database()
        .schema()
        .relation(movie)
        .attr_position("year")
        .unwrap();
    // Importance = recency.
    let mut w = TupleWeights::default();
    w.load_from_attribute(e.database(), movie, year).unwrap();

    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.9),
        CardinalityConstraint::MaxTuplesPerRelation(2),
    )
    .with_strategy(RetrievalStrategy::TopWeight)
    .with_options(DbGenOptions {
        repair_foreign_keys: false,
        tuple_weights: Some(Arc::new(w)),
        ..Default::default()
    });
    let a = e
        .answer(&PrecisQuery::parse(r#""Woody Allen""#), &spec)
        .unwrap();
    let titles: Vec<String> = a.precis.collected[&movie]
        .iter()
        .map(|tid| {
            e.database()
                .table(movie)
                .get(*tid)
                .unwrap()
                .get(1)
                .to_string()
        })
        .collect();
    // The two newest reachable movies win the two slots: Match Point (2005)
    // and Melinda and Melinda (2004).
    assert_eq!(titles, vec!["Match Point", "Melinda and Melinda"]);
}

#[test]
fn answer_within_derives_cardinality_from_the_time_budget() {
    let e = engine();
    // A fake (but well-formed) cost model: 1 µs per probe, 1 µs per read.
    let model = CostModel::new(1e-6, 1e-6);
    let tight = e
        .answer_within(
            &PrecisQuery::parse(r#""Woody Allen""#),
            DegreeConstraint::MinWeight(0.9),
            &model,
            20e-6, // room for very few tuples
        )
        .unwrap();
    let loose = e
        .answer_within(
            &PrecisQuery::parse(r#""Woody Allen""#),
            DegreeConstraint::MinWeight(0.9),
            &model,
            1.0, // effectively unbounded
        )
        .unwrap();
    assert!(tight.precis.total_tuples() < loose.precis.total_tuples());
    assert!(tight.precis.total_tuples() > 0);
}

#[test]
fn synonyms_unify_homonym_spellings_end_to_end() {
    let mut db = woody_allen_instance();
    db.insert(
        "DIRECTOR",
        vec![
            precis::storage::Value::from(3),
            "W. Allen".into(),
            "Brooklyn".into(),
            "December 1, 1935".into(),
        ],
    )
    .unwrap();
    let index = InvertedIndex::build(&db);
    let mut syn = SynonymMap::new();
    syn.add_group(["Woody Allen", "W. Allen"]);

    let director = db.schema().relation_id("DIRECTOR").unwrap();
    let hits = index.lookup_with_synonyms(&db, "woody allen", &syn);
    let dir_hits = hits.iter().find(|o| o.rel == director).unwrap();
    assert_eq!(dir_hits.tids.len(), 2, "both spellings found");
}

#[test]
fn precis_results_survive_a_dump_load_round_trip() {
    let e = engine();
    let a = e
        .answer(
            &PrecisQuery::parse(r#""Woody Allen""#),
            &AnswerSpec::new(
                DegreeConstraint::MinWeight(0.9),
                CardinalityConstraint::MaxTuplesPerRelation(10),
            ),
        )
        .unwrap();
    let text = dump_to_string(&a.precis.database);
    let loaded = load_from_string(&text).unwrap();
    assert_eq!(loaded.total_tuples(), a.precis.total_tuples());
    assert_eq!(
        loaded.schema().relation_count(),
        a.precis.database.schema().relation_count()
    );
    assert!(loaded.validate_foreign_keys().is_empty());
}

#[test]
fn ranked_narratives_put_the_better_connected_homonym_first() {
    use precis::datagen::movies_vocabulary;
    use precis::nlg::Translator;
    let e = engine();
    let a = e
        .answer(
            &PrecisQuery::parse(r#""Woody Allen""#),
            &AnswerSpec::new(
                DegreeConstraint::MinWeight(0.9),
                CardinalityConstraint::MaxTuplesPerRelation(10),
            ),
        )
        .unwrap();
    let vocab = movies_vocabulary(e.database().schema());
    let t = Translator::new(e.database(), e.graph(), &vocab);

    // Unranked order follows occurrence (relation-id) order: ACTOR first.
    let plain = t.translate(&a).unwrap();
    assert_eq!(plain[0].relation, "ACTOR");

    // Ranked: the director homonym connects to more information (3 movies +
    // 6 genres vs 2 movies through CAST) and comes first.
    let ranked = t.translate_ranked(&a).unwrap();
    assert_eq!(ranked[0].relation, "DIRECTOR");
    assert_eq!(ranked[1].relation, "ACTOR");

    // Scores agree with the ranking API.
    let seeds = precis::core::rank_seeds(e.database(), e.graph(), &a.schema, &a.precis);
    assert_eq!(seeds.len(), 2);
    assert!(seeds[0].score > seeds[1].score);
}

#[test]
fn explain_renders_figure_4_and_figure_6() {
    let e = engine();
    let a = e
        .answer(
            &PrecisQuery::parse(r#""Woody Allen""#),
            &AnswerSpec::new(
                DegreeConstraint::MinWeight(0.9),
                CardinalityConstraint::MaxTuplesPerRelation(10),
            ),
        )
        .unwrap();
    let schema_text = explain::explain_schema(e.graph(), &a.schema);
    assert!(schema_text.contains("DIRECTOR [origin]"));
    assert!(schema_text.contains("MOVIE (in-degree 2)"));
    assert!(schema_text.contains("DIRECTOR -> MOVIE"));

    let db_text = explain::explain_precis(e.database(), &a.precis);
    assert!(db_text.contains("Match Point"));
    assert!(db_text.contains("hidden attrs"));
}
