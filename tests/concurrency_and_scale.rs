//! Concurrency: the engine is shareable across threads for read queries
//! (the storage stats use relaxed atomics, everything else is immutable at
//! query time). Plus an ignored paper-scale (34k films) smoke test.

use precis::core::{
    AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery,
};
use precis::datagen::{movies_graph, MoviesConfig, MoviesGenerator};

fn engine(movies: usize, seed: u64) -> PrecisEngine {
    let db = MoviesGenerator::new(MoviesConfig {
        movies,
        directors: (movies / 8).max(1),
        actors: (movies / 2).max(1),
        theatres: (movies / 50).max(1),
        plays: movies * 2,
        seed,
        ..MoviesConfig::default()
    })
    .generate();
    PrecisEngine::new(db, movies_graph()).unwrap()
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PrecisEngine>();
}

#[test]
fn parallel_queries_agree_with_serial_ones() {
    let e = engine(400, 99);
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.7),
        CardinalityConstraint::MaxTuplesPerRelation(15),
    );
    let tokens = ["comedy", "drama", "thriller", "action"];
    let serial: Vec<usize> = tokens
        .iter()
        .map(|t| {
            e.answer(&PrecisQuery::new([*t]), &spec)
                .unwrap()
                .precis
                .total_tuples()
        })
        .collect();

    let parallel: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = tokens
            .iter()
            .map(|t| {
                let e = &e;
                let spec = &spec;
                s.spawn(move || {
                    e.answer(&PrecisQuery::new([*t]), spec)
                        .unwrap()
                        .precis
                        .total_tuples()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel);
}

/// Paper-scale smoke test: the IMDB dump had 34k+ films. Run with
/// `cargo test --release -- --ignored imdb_scale`.
#[test]
#[ignore = "multi-second paper-scale run; invoke explicitly"]
fn imdb_scale_answers_in_bounded_time() {
    let e = engine(34_000, 7);
    assert!(e.database().total_tuples() > 250_000);
    let t0 = std::time::Instant::now();
    let a = e
        .answer(
            &PrecisQuery::new(["comedy"]),
            &AnswerSpec::new(
                DegreeConstraint::MinWeight(0.7),
                CardinalityConstraint::MaxTuplesPerRelation(50),
            ),
        )
        .unwrap();
    let elapsed = t0.elapsed();
    assert!(a.precis.total_tuples() > 0);
    assert!(elapsed.as_secs() < 30, "paper-scale query took {elapsed:?}");
}
