//! The CLI session must be total: arbitrary command lines never panic, and
//! arbitrary query/settings sequences keep the session usable.

use precis_cli::{Session, SessionOutcome, Source};
use proptest::prelude::*;

fn command_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Arbitrary junk.
        "[ -~]{0,40}",
        // Almost-valid commands with arbitrary arguments.
        "(query|set|weight|weights|schema|settings|save|help) [ -~]{0,30}",
        // Valid settings with random numbers.
        (0.0f64..2.0).prop_map(|w| format!("set degree minweight {w}")),
        (0usize..30).prop_map(|r| format!("set degree top {r}")),
        (0usize..30).prop_map(|n| format!("set cardinality perrel {n}")),
        Just("set strategy naive".to_owned()),
        Just("set strategy roundrobin".to_owned()),
        Just("query woody".to_owned()),
        Just("query \"match point\" comedy".to_owned()),
        Just("weight MOVIE->GENRE 0.4".to_owned()),
        Just("weights reset".to_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No command sequence crashes the session or wedges it: after any
    /// sequence, a plain demo query still succeeds.
    #[test]
    fn sessions_survive_arbitrary_command_sequences(
        commands in proptest::collection::vec(command_strategy(), 0..12),
    ) {
        let mut s = Session::open(Source::Demo).expect("demo opens");
        for c in &commands {
            if c.trim() == "quit" || c.trim() == "exit" {
                continue;
            }
            // Redirect saves into the temp dir so fuzzed paths never land in
            // the working directory.
            let c = match c.trim().strip_prefix("save ") {
                Some(rest) => {
                    let name: String = rest.chars().filter(|ch| ch.is_ascii_alphanumeric()).collect();
                    format!(
                        "save {}",
                        std::env::temp_dir().join(format!("precis_fuzz_{name}")).display()
                    )
                }
                None => c.clone(),
            };
            let _ = s.execute(&c); // output or error, never a panic
        }
        match s.execute("query woody") {
            SessionOutcome::Output(text) => prop_assert!(text.contains("result schema")),
            other => prop_assert!(false, "query failed after {commands:?}: {other:?}"),
        }
    }
}
