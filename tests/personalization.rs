//! Personalization (§3.1): weight profiles and query-time constraints
//! produce different answers to the same query.

use precis::core::{
    AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery,
};
use precis::datagen::{movies_graph, woody_allen_instance};
use precis::graph::WeightProfile;

fn engine_with_profiles() -> PrecisEngine {
    let mut e = PrecisEngine::new(woody_allen_instance(), movies_graph()).unwrap();
    // "Reviewers may be typically interested in in-depth, detailed answers"
    // — boost the weakly-weighted regions so more of the database qualifies.
    e.register_profile(
        WeightProfile::new("reviewer")
            .set("MOVIE->CAST", 0.95)
            .set("CAST.role", 0.95)
            .set("MOVIE->PLAY", 0.92)
            .set("PLAY->THEATRE", 1.0)
            .set("THEATRE.name", 1.0),
    );
    // "Cinema fans usually prefer shorter answers" — demote everything but
    // the essentials.
    e.register_profile(
        WeightProfile::new("fan")
            .set("MOVIE->GENRE", 0.2)
            .set("DIRECTOR.blocation", 0.2)
            .set("DIRECTOR.bdate", 0.2),
    );
    e
}

fn q() -> PrecisQuery {
    PrecisQuery::parse(r#""Woody Allen""#)
}

#[test]
fn profiles_change_the_explored_region() {
    let e = engine_with_profiles();
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.9),
        CardinalityConstraint::MaxTuplesPerRelation(10),
    );
    let base = e.answer(&q(), &spec).unwrap();
    let reviewer = e
        .answer(&q(), &spec.clone().with_profile("reviewer"))
        .unwrap();
    let fan = e.answer(&q(), &spec.with_profile("fan")).unwrap();

    let s = e.database().schema();
    let theatre = s.relation_id("THEATRE").unwrap();
    let genre = s.relation_id("GENRE").unwrap();

    // The reviewer profile pulls THEATRE into the answer; the default
    // weights do not.
    assert!(!base.schema.contains(theatre));
    assert!(reviewer.schema.contains(theatre));

    // The fan profile drops GENRE and the director's biographical details.
    assert!(base.schema.contains(genre));
    assert!(!fan.schema.contains(genre));
    assert!(
        fan.schema.total_visible_attrs() < base.schema.total_visible_attrs(),
        "fan answers are shorter"
    );
}

#[test]
fn profiles_do_not_leak_into_the_base_graph() {
    let e = engine_with_profiles();
    let spec = AnswerSpec::new(
        DegreeConstraint::MinWeight(0.9),
        CardinalityConstraint::MaxTuplesPerRelation(10),
    );
    let before = e.answer(&q(), &spec).unwrap();
    let _ = e
        .answer(&q(), &spec.clone().with_profile("reviewer"))
        .unwrap();
    let after = e.answer(&q(), &spec).unwrap();
    assert_eq!(
        before.schema.total_visible_attrs(),
        after.schema.total_visible_attrs()
    );
    assert_eq!(before.precis.total_tuples(), after.precis.total_tuples());
}

#[test]
fn registered_profiles_are_retrievable() {
    let e = engine_with_profiles();
    assert!(e.profile("reviewer").is_some());
    assert!(e.profile("fan").is_some());
    assert!(e.profile("nobody").is_none());
}

#[test]
fn degree_constraints_trade_detail_for_brevity() {
    let e = engine_with_profiles();
    let card = CardinalityConstraint::MaxTuplesPerRelation(10);
    let mut prev = 0;
    // Loosening the weight threshold monotonically grows the answer.
    for w in [1.0, 0.9, 0.6, 0.3, 0.0] {
        let a = e
            .answer(
                &q(),
                &AnswerSpec::new(DegreeConstraint::MinWeight(w), card.clone()),
            )
            .unwrap();
        let vis = a.schema.total_visible_attrs();
        assert!(vis >= prev, "w={w}: {vis} < {prev}");
        prev = vis;
    }
}

#[test]
fn top_r_progressively_reveals_the_database() {
    let e = engine_with_profiles();
    let card = CardinalityConstraint::MaxTuplesPerRelation(10);
    let mut prev_rels = 0;
    for r in [1, 3, 6, 10, 20] {
        let a = e
            .answer(
                &q(),
                &AnswerSpec::new(DegreeConstraint::TopProjections(r), card.clone()),
            )
            .unwrap();
        assert!(a.schema.paths().len() <= r);
        assert!(a.schema.relation_count() >= prev_rels);
        prev_rels = a.schema.relation_count();
    }
}
