//! Property-based tests over randomized weight sets, constraints and data,
//! checking the core invariants of the précis pipeline.

use precis::core::{
    generate_result_database, generate_result_schema, CardinalityConstraint, DbGenOptions,
    DegreeConstraint, RetrievalStrategy,
};
use precis::datagen::{
    chain_schema, movies_graph, random_weight_graph, MoviesConfig, MoviesGenerator,
};
use precis::graph::SchemaGraph;
use precis::index::InvertedIndex;
use precis::storage::{RelationId, TupleId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn degree_strategy() -> impl Strategy<Value = DegreeConstraint> {
    prop_oneof![
        (0usize..20).prop_map(DegreeConstraint::TopProjections),
        (0.0f64..1.0).prop_map(DegreeConstraint::MinWeight),
        (0usize..5).prop_map(DegreeConstraint::MaxPathLength),
    ]
}

fn cardinality_strategy() -> impl Strategy<Value = CardinalityConstraint> {
    prop_oneof![
        (1usize..40).prop_map(CardinalityConstraint::MaxTuplesPerRelation),
        (1usize..120).prop_map(CardinalityConstraint::MaxTotalTuples),
        Just(CardinalityConstraint::Unbounded),
    ]
}

fn movies_graph_with_seed(seed: u64) -> SchemaGraph {
    random_weight_graph(&movies_graph(), &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Accepted projection paths come out weight-sorted and all satisfy the
    /// degree constraint.
    #[test]
    fn schema_gen_respects_degree_constraints(
        seed in 0u64..500,
        origin in 0usize..7,
        degree in degree_strategy(),
    ) {
        let g = movies_graph_with_seed(seed);
        let origins = [RelationId(origin)];
        let rs = generate_result_schema(&g, &origins, &degree);
        let ws: Vec<f64> = rs.paths().iter().map(|p| p.weight()).collect();
        prop_assert!(ws.windows(2).all(|w| w[0] >= w[1] - 1e-12), "{ws:?}");
        match degree {
            DegreeConstraint::TopProjections(r) => prop_assert!(rs.paths().len() <= r),
            DegreeConstraint::MinWeight(w0) => {
                prop_assert!(rs.paths().iter().all(|p| p.weight() >= w0 - 1e-9))
            }
            DegreeConstraint::MaxPathLength(l0) => {
                prop_assert!(rs.paths().iter().all(|p| p.len() <= l0))
            }
            DegreeConstraint::All(_) => unreachable!("not generated"),
        }
        // Origin relations always belong to the schema.
        prop_assert!(rs.contains(RelationId(origin)));
    }

    /// Pruning never changes the outcome, only the work done.
    #[test]
    fn pruning_is_result_invariant(
        seed in 0u64..200,
        origin in 0usize..7,
        degree in degree_strategy(),
    ) {
        use precis::core::generate_result_schema_instrumented as gen;
        let g = movies_graph_with_seed(seed);
        let origins = [RelationId(origin)];
        let (with, s_with) = gen(&g, &origins, &degree, true);
        let (without, s_without) = gen(&g, &origins, &degree, false);
        prop_assert_eq!(with.paths().len(), without.paths().len());
        prop_assert_eq!(with.total_visible_attrs(), without.total_visible_attrs());
        prop_assert!(s_with.pushed <= s_without.pushed);
    }

    /// The generated database obeys its cardinality constraint and only
    /// contains original tuples.
    #[test]
    fn db_gen_respects_cardinality(
        seed in 0u64..40,
        cardinality in cardinality_strategy(),
        naive in any::<bool>(),
    ) {
        let db = MoviesGenerator::new(MoviesConfig {
            movies: 60,
            directors: 10,
            actors: 25,
            theatres: 4,
            plays: 80,
            seed,
            ..MoviesConfig::default()
        }).generate();
        let g = movies_graph_with_seed(seed);
        let index = InvertedIndex::build(&db);
        let occs = index.lookup(&db, "comedy");
        prop_assume!(!occs.is_empty());
        let mut seeds: HashMap<RelationId, Vec<TupleId>> = HashMap::new();
        let mut origins = Vec::new();
        for o in &occs {
            origins.push(o.rel);
            seeds.entry(o.rel).or_default().extend(o.tids.iter());
        }
        let rs = generate_result_schema(&g, &origins, &DegreeConstraint::MinWeight(0.3));
        let strategy = if naive { RetrievalStrategy::NaiveQ } else { RetrievalStrategy::RoundRobin };
        let p = generate_result_database(
            &db, &g, &rs, &seeds, &cardinality, strategy,
            &DbGenOptions { repair_foreign_keys: false, ..Default::default() },
        ).unwrap();

        match cardinality {
            CardinalityConstraint::MaxTuplesPerRelation(c) => {
                for tids in p.collected.values() {
                    prop_assert!(tids.len() <= c);
                }
            }
            CardinalityConstraint::MaxTotalTuples(c) => {
                prop_assert!(p.total_tuples() <= c)
            }
            _ => {}
        }
        // Subset property: every collected tid exists in the original.
        for (rel, tids) in &p.collected {
            for tid in tids {
                prop_assert!(db.table(*rel).get(*tid).is_some());
            }
        }
        // No duplicates per relation.
        for tids in p.collected.values() {
            let mut sorted = tids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), tids.len());
        }
    }

    /// With repair enabled, the materialized database always satisfies its
    /// copied foreign keys, whatever the budget.
    #[test]
    fn repaired_results_always_satisfy_fks(
        seed in 0u64..30,
        per_rel in 1usize..12,
    ) {
        let db = MoviesGenerator::new(MoviesConfig {
            movies: 50,
            directors: 8,
            actors: 20,
            theatres: 3,
            plays: 60,
            seed,
            ..MoviesConfig::default()
        }).generate();
        let g = movies_graph_with_seed(seed);
        let index = InvertedIndex::build(&db);
        let occs = index.lookup(&db, "drama");
        prop_assume!(!occs.is_empty());
        let mut seeds: HashMap<RelationId, Vec<TupleId>> = HashMap::new();
        let mut origins = Vec::new();
        for o in &occs {
            origins.push(o.rel);
            seeds.entry(o.rel).or_default().extend(o.tids.iter());
        }
        let rs = generate_result_schema(&g, &origins, &DegreeConstraint::MinWeight(0.2));
        let p = generate_result_database(
            &db, &g, &rs, &seeds,
            &CardinalityConstraint::MaxTuplesPerRelation(per_rel),
            RetrievalStrategy::NaiveQ,
            &DbGenOptions::default(),
        ).unwrap();
        prop_assert!(p.database.validate_foreign_keys().is_empty());
    }

    /// The optimized (Dijkstra) schema generator agrees with the paper's
    /// Figure 3 algorithm on visible attributes under min-weight
    /// constraints, for random weight sets and every origin.
    #[test]
    fn fast_schema_gen_matches_on_visible_attrs(
        seed in 0u64..300,
        origin in 0usize..7,
        w0 in 0.0f64..1.0,
    ) {
        use precis::core::generate_result_schema_fast;
        let g = movies_graph_with_seed(seed);
        let origins = [RelationId(origin)];
        let slow = generate_result_schema(&g, &origins, &DegreeConstraint::MinWeight(w0));
        let fast = generate_result_schema_fast(&g, &origins, &DegreeConstraint::MinWeight(w0));
        for rel in 0..7 {
            let rel = RelationId(rel);
            prop_assert_eq!(
                slow.visible_attrs(rel),
                fast.visible_attrs(rel),
                "seed={} origin={} w0={} rel={:?}",
                seed, origin, w0, rel
            );
        }
        // Fast never keeps more paths than distinct visible attributes.
        prop_assert_eq!(fast.paths().len(), fast.total_visible_attrs());
    }

    /// Chain schemas of any length produce well-formed graphs whose best
    /// path weights decay monotonically with distance.
    #[test]
    fn chain_path_weights_decay(
        n in 2usize..8,
        w in 0.1f64..1.0,
    ) {
        let schema = chain_schema(n, 2);
        let g = SchemaGraph::from_foreign_keys(schema, w, w, 1.0).unwrap();
        let r0 = g.schema().relation_id("R0").unwrap();
        let rs = generate_result_schema(&g, &[r0], &DegreeConstraint::MinWeight(0.0));
        // For each relation, its best visible path weight is w^distance.
        for i in 1..n {
            let ri = g.schema().relation_id(&format!("R{i}")).unwrap();
            let best = rs
                .paths()
                .iter()
                .filter(|p| p.end_relation() == ri && p.is_projection())
                .map(|p| p.weight())
                .fold(f64::NEG_INFINITY, f64::max);
            let expected = w.powi(i as i32);
            prop_assert!((best - expected).abs() < 1e-9, "i={i} best={best} expected={expected}");
        }
    }
}
