//! The full pipeline on a second domain (university), proving nothing in
//! the engine is movies-specific: index → result schema → result database →
//! narrative, plus personalization.

use precis::core::{
    AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery,
};
use precis::datagen::{university_graph, university_instance, university_vocabulary};
use precis::graph::WeightProfile;
use precis::nlg::Translator;

fn engine() -> PrecisEngine {
    PrecisEngine::new(university_instance(), university_graph()).unwrap()
}

fn spec() -> AnswerSpec {
    AnswerSpec::new(
        DegreeConstraint::MinWeight(0.8),
        CardinalityConstraint::MaxTuplesPerRelation(10),
    )
}

#[test]
fn professor_query_builds_a_teaching_subdatabase() {
    let e = engine();
    let a = e
        .answer(&PrecisQuery::parse(r#""Ada Lovelace""#), &spec())
        .unwrap();
    let s = e.database().schema();
    let rel = |n: &str| s.relation_id(n).unwrap();
    assert!(a.schema.contains(rel("PROFESSOR")));
    assert!(a.schema.contains(rel("TEACHES")), "bridge included");
    assert!(a.schema.contains(rel("COURSE")));
    assert!(a.schema.contains(rel("DEPARTMENT")));
    // Ada teaches two courses.
    assert_eq!(a.precis.collected[&rel("COURSE")].len(), 2);
    assert!(a.precis.database.validate_foreign_keys().is_empty());
}

#[test]
fn professor_narrative_reads_naturally() {
    let e = engine();
    let a = e
        .answer(&PrecisQuery::parse(r#""Ada Lovelace""#), &spec())
        .unwrap();
    let vocab = university_vocabulary(e.database().schema());
    let translator = Translator::new(e.database(), e.graph(), &vocab);
    let narratives = translator.translate(&a).unwrap();
    assert_eq!(narratives.len(), 1);
    let text = &narratives[0].text;
    assert!(text.starts_with("Ada Lovelace is a Professor."), "{text}");
    assert!(
        text.contains("Ada Lovelace teaches Analytical Engines, Query Processing."),
        "{text}"
    );
    assert!(
        text.contains("Ada Lovelace works in the Computer Science department."),
        "{text}"
    );
}

#[test]
fn course_query_walks_the_other_direction() {
    let e = engine();
    let a = e
        .answer(&PrecisQuery::parse(r#""Analytical Engines""#), &spec())
        .unwrap();
    let vocab = university_vocabulary(e.database().schema());
    let translator = Translator::new(e.database(), e.graph(), &vocab);
    let narratives = translator.translate(&a).unwrap();
    assert_eq!(narratives.len(), 1);
    let text = &narratives[0].text;
    assert!(text.contains("Analytical Engines is a course."), "{text}");
    assert!(text.contains("is taught by Ada Lovelace."), "{text}");
}

#[test]
fn student_view_profile_reshapes_the_answer() {
    let mut e = engine();
    // A student-facing profile: de-emphasize the teaching staff entirely.
    e.register_profile(
        WeightProfile::new("student-view")
            .set("TEACHES->PROFESSOR", 0.1)
            .set("COURSE->DEPARTMENT", 0.1),
    );
    let base = e
        .answer(&PrecisQuery::parse("incompleteness"), &spec())
        .unwrap();
    let slim = e
        .answer(
            &PrecisQuery::parse("incompleteness"),
            &spec().with_profile("student-view"),
        )
        .unwrap();
    let professor = e.database().schema().relation_id("PROFESSOR").unwrap();
    assert!(base.schema.contains(professor));
    assert!(!slim.schema.contains(professor));
}
