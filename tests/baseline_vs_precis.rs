//! The Related Work contrast (§2): keyword search returns flattened joined
//! rows; a précis returns a whole sub-database with surrounding information.

use precis::baseline::KeywordSearch;
use precis::core::{
    AnswerSpec, CardinalityConstraint, DegreeConstraint, PrecisEngine, PrecisQuery,
};
use precis::datagen::{movies_graph, woody_allen_instance};
use precis::index::InvertedIndex;

#[test]
fn baseline_returns_flattened_rows_precis_returns_a_database() {
    let db = woody_allen_instance();
    let graph = movies_graph();
    let index = InvertedIndex::build(&db);

    // Baseline: "woody allen" alone — one relation per occurrence, zero
    // joins, a flat row per matching tuple.
    let ks = KeywordSearch::new(&db, &graph, &index);
    let answers = ks.search(&["woody allen"], 4, 100);
    assert!(!answers.is_empty());
    assert!(answers.iter().all(|a| a.score() == 0));
    // "The answer provided by existing approaches for Woody Allen would be
    // in the form of relation-attribute pair" — no movies appear anywhere.
    let baseline_text: Vec<String> = answers
        .iter()
        .flat_map(|a| a.rows.iter())
        .flat_map(|r| r.values.iter().map(|v| v.to_string()))
        .collect();
    assert!(!baseline_text.iter().any(|v| v.contains("Match Point")));

    // Précis: the same token yields a multi-relation database including the
    // movies and genres.
    let engine = PrecisEngine::new(db, graph).unwrap();
    let answer = engine
        .answer(
            &PrecisQuery::parse(r#""woody allen""#),
            &AnswerSpec::new(
                DegreeConstraint::MinWeight(0.9),
                CardinalityConstraint::MaxTuplesPerRelation(10),
            ),
        )
        .unwrap();
    assert!(answer.precis.database.schema().relation_count() >= 4);
    let s = engine.database().schema();
    let movie = s.relation_id("MOVIE").unwrap();
    let titles: Vec<String> = answer.precis.collected[&movie]
        .iter()
        .map(|tid| {
            engine
                .database()
                .table(movie)
                .get(*tid)
                .unwrap()
                .get(1)
                .to_string()
        })
        .collect();
    assert!(titles.contains(&"Match Point".to_owned()));
}

#[test]
fn baseline_needs_two_keywords_to_reach_the_join() {
    let db = woody_allen_instance();
    let graph = movies_graph();
    let index = InvertedIndex::build(&db);
    let ks = KeywordSearch::new(&db, &graph, &index);

    let answers = ks.search(&["woody", "match point"], 4, 100);
    assert!(!answers.is_empty());
    let best = &answers[0];
    // DIRECTOR ⋈ MOVIE: one join.
    assert_eq!(best.score(), 1);
    let text: Vec<String> = best.rows[0].values.iter().map(|v| v.to_string()).collect();
    assert!(text.iter().any(|v| v == "Woody Allen"));
    assert!(text.iter().any(|v| v == "Match Point"));
}

#[test]
fn baseline_trees_respect_all_keywords() {
    let db = woody_allen_instance();
    let graph = movies_graph();
    let index = InvertedIndex::build(&db);
    let ks = KeywordSearch::new(&db, &graph, &index);

    // "scarlett" (ACTOR) + "drama" (GENRE): connected through CAST, MOVIE.
    let answers = ks.search(&["scarlett", "drama"], 5, 100);
    assert!(!answers.is_empty());
    for a in &answers {
        for row in &a.rows {
            let text: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            assert!(text.iter().any(|v| v.contains("Scarlett")));
            assert!(text.iter().any(|v| v == "Drama"));
        }
    }
    // Scarlett Johansson played in Match Point (Drama): a valid tuple tree
    // exists.
    assert!(answers.iter().any(|a| !a.rows.is_empty()));
}
